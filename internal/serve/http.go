package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"context"

	"incranneal/internal/core"
	"incranneal/internal/mqo"
	"incranneal/internal/obs"
)

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Problem is the MQO instance in the mqogen/mqosolve interchange
	// format (planCosts grouped by query, savings over global plan
	// indices).
	Problem *mqo.Problem `json:"problem"`
	// Options tunes the solve; zero values take the server defaults.
	Options SolveOptions `json:"options"`
	// Stream switches the response to NDJSON event streaming (also
	// selectable with the ?stream=1 query parameter).
	Stream bool `json:"stream,omitempty"`
}

// SolveOptions is the per-request slice of core.Options the server
// exposes, plus scheduling fields (device, strategy, deadline).
type SolveOptions struct {
	// Device overrides the fleet's default device for this solve: da,
	// da-pt, sa, hqa or va.
	Device string `json:"device,omitempty"`
	// Strategy is incremental (default), parallel or default.
	Strategy string `json:"strategy,omitempty"`
	// Runs per (partial) problem; 0 takes the server default.
	Runs int `json:"runs,omitempty"`
	// TotalSweeps is the overall annealing budget; 0 takes the server
	// default (usually the device default).
	TotalSweeps int `json:"totalSweeps,omitempty"`
	// Seed pins the solve; identical problem+options+seed yield a
	// bit-identical outcome, through the server or standalone.
	Seed int64 `json:"seed,omitempty"`
	// Capacity overrides the device variable capacity (partial-problem
	// size bound); 0 takes the server setting.
	Capacity int `json:"capacity,omitempty"`
	// DeadlineMillis bounds queue wait + solve; 0 takes the server
	// default, values above the server maximum are clamped.
	DeadlineMillis int64 `json:"deadlineMillis,omitempty"`
	// DisableDSS turns dynamic search steering off (ablation).
	DisableDSS bool `json:"disableDss,omitempty"`
	// Priority is the request's queue class: low, normal or high. Higher
	// classes dequeue first and high-priority requests bypass overload
	// shedding. Empty takes the server default (normal unless
	// configured).
	Priority string `json:"priority,omitempty"`
}

// SolveResponse is the final answer for one solve — the JSON shape of a
// core.Outcome plus serving metadata.
type SolveResponse struct {
	ID               string  `json:"id"`
	Strategy         string  `json:"strategy"`
	Device           string  `json:"device"`
	Cost             float64 `json:"cost"`
	Selected         []int   `json:"selected"`
	Partitions       int     `json:"partitions"`
	Sweeps           int     `json:"sweeps"`
	DiscardedSavings float64 `json:"discardedSavings"`
	ReappliedSavings float64 `json:"reappliedSavings"`
	Degradations     int     `json:"degradations"`
	// Cache reports the solve's cross-solve cache interaction (structure
	// hit, skeleton reuse, warm start); absent when caching is disabled.
	Cache *core.CacheOutcome `json:"cache,omitempty"`
	// QueueMillis is time spent waiting for a fleet slot; SolveMillis is
	// the solve itself; TotalMillis spans admission to response.
	QueueMillis int64 `json:"queueMillis"`
	SolveMillis int64 `json:"solveMillis"`
	TotalMillis int64 `json:"totalMillis"`
}

// StreamEvent is one NDJSON line of a streamed solve. Type is "accepted",
// "incumbent", "outcome" or "error"; exactly one of the payload fields is
// set per type.
type StreamEvent struct {
	Type string `json:"type"`
	// ID accompanies "accepted" and "error".
	ID string `json:"id,omitempty"`
	// QueueDepth accompanies "accepted": jobs queued ahead of this one.
	QueueDepth int `json:"queueDepth,omitempty"`
	// Merged, Cost and ElapsedMillis accompany "incumbent".
	Merged        int     `json:"merged,omitempty"`
	Sub           int     `json:"sub,omitempty"`
	Cost          float64 `json:"cost,omitempty"`
	ElapsedMillis int64   `json:"elapsedMillis,omitempty"`
	// Outcome accompanies "outcome".
	Outcome *SolveResponse `json:"outcome,omitempty"`
	// Error accompanies "error".
	Error string `json:"error,omitempty"`
}

// errorBody is the JSON error envelope of non-streamed failures.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retryAfterSeconds,omitempty"`
}

// Healthz is the GET /healthz body. /healthz is liveness — it answers 200
// whenever the process can serve HTTP, drain and journal replay included.
type Healthz struct {
	Status        string `json:"status"` // "ok" or "draining"
	QueueDepth    int    `json:"queueDepth"`
	QueueCapacity int    `json:"queueCapacity"`
	Fleet         int    `json:"fleet"`
	Device        string `json:"device"`
}

// Readyz is the GET /readyz body. /readyz is readiness — it answers 503
// while the server is draining for shutdown or still replaying its
// admission journal after a restart, and 200 only when new requests will
// be admitted and served promptly. Load balancers and the CI daemon smoke
// poll this, not /healthz.
type Readyz struct {
	Status     string `json:"status"` // "ok", "draining" or "replaying"
	QueueDepth int    `json:"queueDepth"`
	Replaying  bool   `json:"replaying"`
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.handleSolve)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	mux.HandleFunc("/metricsz", s.handleMetricsz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	status := "ok"
	if s.draining {
		status = "draining"
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, Healthz{
		Status:        status,
		QueueDepth:    s.queueDepth(),
		QueueCapacity: s.cfg.queueDepth(),
		Fleet:         s.cfg.fleet(),
		Device:        s.cfg.device(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	replaying := s.replaying.Load()
	body := Readyz{Status: "ok", QueueDepth: s.queueDepth(), Replaying: replaying}
	status := http.StatusOK
	switch {
	case draining:
		body.Status = "draining"
		status = http.StatusServiceUnavailable
	case replaying:
		body.Status = "replaying"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, body)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	if reg == nil {
		writeJSON(w, http.StatusOK, map[string]any{"metrics": "disabled (start the server with a metrics sink)"})
		return
	}
	writeJSON(w, http.StatusOK, reg.Snapshot())
}

// handleMetricsz serves the registry in the Prometheus text exposition
// format (see obs.WritePrometheus for the naming scheme and
// docs/mqoserve.md for the metric reference). The daemon always runs with
// a metrics sink, so scrapers only see 503 on a deliberately sink-free
// embedded server.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	reg := s.registry()
	if reg == nil {
		http.Error(w, "metrics disabled (start the server with a metrics sink)", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w) //nolint:errcheck // best-effort, like every exporter
}

// handleSolve is the admission path: parse → deadline context → bounded
// queue (reject-on-full) → hand off to a fleet worker → stream or await
// the result.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"), 0)
		return
	}
	reg := s.registry()
	var req SolveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		reg.Counter("serve.admission.bad_request").Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err), 0)
		return
	}
	if req.Problem == nil || req.Problem.NumQueries() == 0 {
		reg.Counter("serve.admission.bad_request").Add(1)
		writeError(w, http.StatusBadRequest, fmt.Errorf("request carries no problem"), 0)
		return
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" || v == "ndjson" {
		req.Stream = true
	}

	deadline := s.cfg.defaultDeadline()
	if req.Options.DeadlineMillis > 0 {
		deadline = time.Duration(req.Options.DeadlineMillis) * time.Millisecond
	}
	if max := s.cfg.maxDeadline(); deadline > max {
		deadline = max
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	j, err := s.prepareJob(&req, s.ids.next(), ctx)
	if err != nil {
		reg.Counter("serve.admission.bad_request").Add(1)
		writeError(w, http.StatusBadRequest, err, 0)
		return
	}
	device, strategy := j.device, j.strategy
	if sink := s.cfg.Sink; sink.Enabled() {
		// Root of the request's span tree. The trace id derives from the
		// request seed and id — deterministic, never wall-clock randomness —
		// so a replayed request reproduces identical span identity. The
		// queue span opens before admission and is closed by the worker at
		// pickup (or below, on rejection).
		var spanCtx context.Context
		spanCtx, j.span = sink.StartTrace(ctx, "request", obs.NewTraceID(req.Options.Seed, j.id))
		j.span.Attr("id", j.id).Attr("device", device).Attr("strategy", strategy)
		// The queue span is a leaf: solve work parents on the request
		// span, so queue and worker render as siblings.
		_, j.queueSpan = sink.StartSpan(spanCtx, "queue")
		j.ctx = spanCtx
	}

	// Adaptive overload shedding: when the fleet is demonstrably behind
	// (sliding-window p99 queue wait above the target), reject low- and
	// normal-priority work before it joins the backlog. High priority
	// always passes — the class exists so operators can keep a critical
	// stream flowing through an overload.
	if j.priority < priorityHigh && s.shed.overloaded() {
		reg.Counter("serve.admission.shed").Add(1)
		j.queueSpan.Attr("rejected", "shed").End()
		j.span.Attr("rejected", "shed").End()
		retry := s.cfg.retryAfter()
		sec := int((retry + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		writeError(w, http.StatusServiceUnavailable,
			fmt.Errorf("rejected: shedding %s-priority load (queue wait p99 over target)", priorityName(j.priority)), sec)
		return
	}

	// Journal before admit: once the fsync lands the request survives a
	// crash, and an admission reject simply tombstones it again. A failed
	// journal write (disk trouble, chaos) degrades crash safety for this
	// one request but never rejects it.
	if err := s.journal.accept(j.id, j.priority, &req); err != nil {
		reg.Counter("serve.journal.write_failures").Add(1)
		j.span.Attr("journal", "write_failed")
	}

	queued := s.queueDepth()
	ok, reason := s.admit(j)
	if !ok {
		s.journal.done(j.id)
		j.queueSpan.Attr("rejected", reason).End()
		j.span.Attr("rejected", reason).End()
		retry := s.cfg.retryAfter()
		switch reason {
		case "draining":
			reg.Counter("serve.admission.rejected_draining").Add(1)
			retry = 5 * retry // the process is going away; back off harder
		default:
			reg.Counter("serve.admission.rejected_full").Add(1)
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("rejected: %s", reason), int((retry+time.Second-1)/time.Second))
		return
	}
	reg.Counter("serve.admission.accepted").Add(1)
	reg.Gauge("serve.queue.depth").Set(float64(s.queueDepth()))
	defer s.inflight.Done() // balanced by admit's Add under the lock

	if req.Stream {
		s.respondStream(w, j, device, strategy, queued)
	} else {
		s.respondUnary(w, j, device, strategy)
	}
}

// prepareJob validates req and assembles the job — options resolved
// against the server defaults — without admitting it. Both the HTTP
// admission path and journal replay build jobs here, so a replayed request
// resolves to exactly the options it would have run with originally.
func (s *Server) prepareJob(req *SolveRequest, id string, ctx context.Context) (*job, error) {
	if req.Problem == nil || req.Problem.NumQueries() == 0 {
		return nil, fmt.Errorf("request carries no problem")
	}
	strategy := req.Options.Strategy
	if strategy == "" {
		strategy = core.StrategyIncremental
	}
	switch strategy {
	case core.StrategyIncremental, core.StrategyParallel, core.StrategyDefault:
	default:
		return nil, fmt.Errorf("unknown strategy %q", strategy)
	}
	device := req.Options.Device
	if device == "" {
		device = s.cfg.device()
	}
	if _, err := s.cfg.newRawDevice(device); err != nil {
		return nil, err
	}
	defPriority, _ := parsePriority(s.cfg.DefaultPriority, priorityNormal)
	priority, ok := parsePriority(req.Options.Priority, defPriority)
	if !ok {
		return nil, fmt.Errorf("unknown priority %q (want low, normal or high)", req.Options.Priority)
	}
	capacity := req.Options.Capacity
	if capacity == 0 {
		capacity = s.cfg.Capacity
	}
	runs := req.Options.Runs
	if runs == 0 {
		runs = s.cfg.defaultRuns()
	}
	sweeps := req.Options.TotalSweeps
	if sweeps == 0 {
		sweeps = s.cfg.DefaultSweeps
	}
	return &job{
		id:      id,
		problem: req.Problem,
		opt: core.Options{
			Capacity:    capacity,
			Runs:        runs,
			TotalSweeps: sweeps,
			Seed:        req.Options.Seed,
			Parallelism: s.perSolveParallelism(),
			DisableDSS:  req.Options.DisableDSS,
		},
		strategy: strategy,
		device:   device,
		priority: priority,
		ctx:      ctx,
		admitted: time.Now(),
		sess:     make(chan *core.Session, 1),
		result:   make(chan jobResult, 1),
	}, nil
}

// respondUnary waits for the job's result and writes one JSON body.
func (s *Server) respondUnary(w http.ResponseWriter, j *job, device, strategy string) {
	// The session handle must be drained even when unused, so the worker
	// never blocks; capacity 1 makes this receive non-blocking in effect.
	var queueWait time.Duration
	if sess, ok := <-j.sess; ok && sess != nil {
		queueWait = time.Since(j.admitted)
		_ = sess // incumbents are dropped by the session's buffer policy
	}
	res := <-j.result
	s.finishMetrics(j, res)
	if res.err != nil {
		writeError(w, statusFor(j, res.err), res.err, 0)
		return
	}
	writeJSON(w, http.StatusOK, s.response(j, res.out, device, strategy, queueWait))
}

// respondStream writes the NDJSON event stream: accepted, one line per
// incumbent while the solve runs, then outcome (or error).
func (s *Server) respondStream(w http.ResponseWriter, j *job, device, strategy string, queued int) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc.Encode(StreamEvent{Type: "accepted", ID: j.id, QueueDepth: queued}) //nolint:errcheck
	flush()

	emit := func(inc core.Incumbent) {
		if inc.Final {
			return // the outcome event carries the final cost
		}
		enc.Encode(StreamEvent{ //nolint:errcheck
			Type: "incumbent", Merged: inc.Merged, Sub: inc.Sub,
			Cost: inc.Cost, ElapsedMillis: inc.Elapsed.Milliseconds(),
		})
		flush()
	}
	var queueWait time.Duration
	var res jobResult
	haveRes := false
	if sess, ok := <-j.sess; ok && sess != nil {
		queueWait = time.Since(j.admitted)
		// Consume incumbents and the result together: on the normal path
		// the incumbent channel closes strictly before the result arrives,
		// but an abandoned (watchdog-quarantined) solve delivers a result
		// while its incumbent stream never closes — ranging the stream
		// alone would wedge this handler exactly when the server just
		// recovered a wedged worker.
		incs := sess.Incumbents()
	recv:
		for {
			select {
			case inc, ok := <-incs:
				if !ok {
					break recv
				}
				emit(inc)
			case res = <-j.result:
				haveRes = true
				// The solve is finished (or abandoned): drain whatever
				// incumbents are already buffered, without blocking.
				for {
					select {
					case inc, ok := <-incs:
						if !ok {
							break recv
						}
						emit(inc)
					default:
						break recv
					}
				}
			}
		}
	}
	if !haveRes {
		res = <-j.result
	}
	s.finishMetrics(j, res)
	if res.err != nil {
		enc.Encode(StreamEvent{Type: "error", ID: j.id, Error: res.err.Error()}) //nolint:errcheck
		flush()
		return
	}
	enc.Encode(StreamEvent{Type: "outcome", Outcome: s.response(j, res.out, device, strategy, queueWait)}) //nolint:errcheck
	flush()
}

// response assembles the final SolveResponse from an outcome.
func (s *Server) response(j *job, out *core.Outcome, device, strategy string, queueWait time.Duration) *SolveResponse {
	return &SolveResponse{
		ID:               j.id,
		Strategy:         out.Strategy,
		Device:           device,
		Cost:             out.Cost,
		Selected:         append([]int(nil), out.Solution.Selected...),
		Partitions:       out.NumPartitions,
		Sweeps:           out.Sweeps,
		DiscardedSavings: out.DiscardedSavings,
		ReappliedSavings: out.ReappliedSavings,
		Degradations:     len(out.Degradations),
		Cache:            out.Cache,
		QueueMillis:      queueWait.Milliseconds(),
		SolveMillis:      out.Elapsed.Milliseconds(),
		TotalMillis:      time.Since(j.admitted).Milliseconds(),
	}
}

// finishMetrics records the request's terminal metrics, tombstones its
// journal entry and closes its root span. Sub-millisecond latencies keep
// their fraction so the quantile histogram's low buckets stay meaningful.
func (s *Server) finishMetrics(j *job, res jobResult) {
	s.journal.done(j.id)
	if res.err != nil {
		j.span.Attr("error", res.err.Error())
	}
	j.span.End()
	reg := s.registry()
	if reg == nil {
		return
	}
	latency := time.Since(j.admitted)
	reg.Histogram("serve.request.latency_ms").Observe(latency.Seconds() * 1e3)
	if res.err != nil {
		reg.Counter("serve.requests.failed").Add(1)
	} else {
		reg.Counter("serve.requests.completed").Add(1)
	}
}

// statusFor maps a solve error to an HTTP status: deadline/cancellation
// errors are the gateway-timeout family, everything else is a plain 500.
func statusFor(j *job, err error) int {
	if j.ctx.Err() != nil {
		return http.StatusGatewayTimeout
	}
	_ = err
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(body) //nolint:errcheck
}

func writeError(w http.ResponseWriter, status int, err error, retryAfterSeconds int) {
	writeJSON(w, status, errorBody{Error: err.Error(), RetryAfter: retryAfterSeconds})
}
