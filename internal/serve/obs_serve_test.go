package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"incranneal/internal/obs"
	"incranneal/internal/tracetool"
)

// TestMetricszScrapeRaceMidSolve hammers /statsz and /metricsz from
// concurrent scrapers while a solve is running — the race detector guards
// the registry's lock discipline, and the exposition must stay
// syntactically valid at every instant, not just at rest.
func TestMetricszScrapeRaceMidSolve(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Capacity: 40, Fleet: 1, Parallelism: -1,
		Sink: obs.NewSink(nil, reg),
	})
	p := testProblem(t, 17)

	reqBody, err := json.Marshal(SolveRequest{
		Problem: p,
		Options: SolveOptions{Runs: 4, TotalSweeps: 800, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(reqBody))
		if err != nil {
			t.Errorf("solve: %v", err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("solve status %d: %s", resp.StatusCode, body)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, path := range []string{"/statsz", "/metricsz"} {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Errorf("%s: %v", path, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s status %d", path, resp.StatusCode)
						return
					}
					switch path {
					case "/statsz":
						var m map[string]any
						if err := json.Unmarshal(body, &m); err != nil {
							t.Errorf("/statsz not JSON mid-solve: %v\n%s", err, body)
							return
						}
					case "/metricsz":
						if len(bytes.TrimSpace(body)) == 0 {
							continue // before the first metric lands
						}
						if err := obs.LintPrometheus(bytes.NewReader(body)); err != nil {
							t.Errorf("/metricsz invalid mid-solve: %v\n%s", err, body)
							return
						}
					}
				}
			}
		}()
	}
	<-done
	wg.Wait()

	// At rest the exposition must carry the serving metrics.
	resp, err2 := http.Get(ts.URL + "/metricsz")
	if err2 != nil {
		t.Fatal(err2)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"mqo_serve_requests_completed_total 1",
		"mqo_serve_request_latency_ms_bucket",
		"mqo_serve_queue_wait_ms_count",
		"mqo_latency_anneal_ms_count",
		"mqo_latency_solve_ms_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metricsz missing %q:\n%s", want, body)
		}
	}
	if err := obs.LintPrometheus(bytes.NewReader(body)); err != nil {
		t.Fatalf("final exposition invalid: %v", err)
	}
}

// TestMetricszWithoutSink pins the embedded-server contract: no sink, 503.
func TestMetricszWithoutSink(t *testing.T) {
	_, ts := newTestServer(t, Config{Capacity: 40, Fleet: 1, Parallelism: -1})
	resp, err := http.Get(ts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

// TestServeTraceSpanTreeWellFormed runs traced solves through the server
// and asserts the span-tree invariants on the emitted JSONL: every span's
// parent id resolves to a live span, no orphans, and the reconstructed
// request tree descends admission → worker → session → device solve.
func TestServeTraceSpanTreeWellFormed(t *testing.T) {
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	sink := obs.NewSink(&buf, reg)
	_, ts := newTestServer(t, Config{
		Capacity: 40, Fleet: 2, Parallelism: -1,
		Sink: sink,
	})
	for seed := int64(1); seed <= 2; seed++ {
		resp, body := postSolve(t, ts.URL, SolveRequest{
			Problem: testProblem(t, 19),
			Options: SolveOptions{Runs: 4, TotalSweeps: 800, Seed: seed},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve status %d: %s", resp.StatusCode, body)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := tracetool.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	traces := tracetool.BuildForest(events)
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want one per request", len(traces))
	}
	if err := tracetool.WellFormed(traces); err != nil {
		t.Fatalf("span tree violation: %v", err)
	}
	for _, tr := range traces {
		if len(tr.Roots) != 1 || tr.Roots[0].Name != "request" {
			t.Fatalf("trace %s roots = %+v, want single request root", tr.ID, tr.Roots)
		}
		root := tr.Roots[0]
		if root.Attrs["id"] == "" || root.Attrs["device"] == "" {
			t.Errorf("request span attrs incomplete: %v", root.Attrs)
		}
		names := map[string]bool{}
		for _, n := range tr.Spans {
			names[n.Name] = true
		}
		for _, want := range []string{"request", "queue", "worker", "session", "anneal"} {
			if !names[want] {
				t.Errorf("trace %s missing %q span (have %v)", tr.ID, want, names)
			}
		}
		// The session span carries cache-tier attribution.
		tier := ""
		for _, n := range tr.Spans {
			if n.Name == "session" {
				tier = n.Attrs["cache.tier"]
			}
		}
		if tier != "cold" {
			t.Errorf("trace %s session cache.tier = %q, want cold (no cache configured)", tr.ID, tier)
		}
		// Critical path reaches the device solve.
		path := tracetool.CriticalPath(root)
		if len(path) < 4 {
			t.Errorf("trace %s critical path too shallow: %d levels", tr.ID, len(path))
		}
	}

	// Deterministic identity: the same seed re-solved maps to the same
	// trace id only when the request id matches too; here we assert the
	// weaker but load-bearing property that ids are distinct across the
	// two requests and stable within each tree.
	if traces[0].ID == traces[1].ID {
		t.Error("distinct requests share a trace id")
	}
}
