package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"incranneal/internal/obs"
)

// TestServeCacheDisabledByDefault: without CacheEntries the fleet has no
// cache and responses carry no cache outcome — the bit-identical-to-
// standalone contract stays untouched.
func TestServeCacheDisabledByDefault(t *testing.T) {
	p := testProblem(t, 21)
	s, ts := newTestServer(t, Config{Capacity: 40, Fleet: 1, Parallelism: -1})
	if s.cache != nil {
		t.Fatal("cache built without CacheEntries")
	}
	resp, body := postSolve(t, ts.URL, SolveRequest{
		Problem: p,
		Options: SolveOptions{Runs: 2, TotalSweeps: 200, Seed: 3},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache != nil {
		t.Fatalf("cache outcome reported with caching off: %+v", out.Cache)
	}
}

// TestServeCacheRecurrence solves the same problem twice through a cached
// fleet: the second response reports a structure hit with a bit-identical
// cost, and /statsz carries the cache.* gauges.
func TestServeCacheRecurrence(t *testing.T) {
	p := testProblem(t, 23)
	sink := obs.NewSink(nil, obs.NewRegistry())
	s, ts := newTestServer(t, Config{Capacity: 40, Fleet: 2, Parallelism: -1, CacheEntries: -1, WarmStartDrift: 0.2, Sink: sink})
	if s.cache == nil {
		t.Fatal("CacheEntries did not build the fleet cache")
	}
	req := SolveRequest{
		Problem: p,
		Options: SolveOptions{Runs: 2, TotalSweeps: 200, Seed: 3},
	}
	resp, body := postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first SolveResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cache == nil || first.Cache.StructureHit {
		t.Fatalf("first solve misreported its cache outcome: %+v", first.Cache)
	}

	resp, body = postSolve(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var second SolveResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if second.Cache == nil || !second.Cache.StructureHit {
		t.Fatalf("recurrence missed: %+v", second.Cache)
	}
	if second.Cache.WarmStart {
		t.Fatalf("zero-drift recurrence warm-started: %+v", second.Cache)
	}
	if second.Cost != first.Cost {
		t.Fatalf("recurrence cost %v differs from first solve %v", second.Cost, first.Cost)
	}

	statsResp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var buf strings.Builder
	if _, err := io.Copy(&buf, statsResp.Body); err != nil {
		t.Fatal(err)
	}
	stats := buf.String()
	for _, g := range []string{"cache.structure.hits", "cache.structure.misses", "cache.skeleton.hits", "cache.entries"} {
		if !strings.Contains(stats, g) {
			t.Errorf("/statsz missing gauge %s:\n%s", g, stats)
		}
	}
	if st := s.cache.Stats(); st.StructureHits < 1 || st.StructureMisses < 1 {
		t.Fatalf("fleet cache stats = %+v, want at least 1 hit and 1 miss", st)
	}
}
