package serve

import (
	"sort"
	"sync"
	"time"
)

// Priority classes for admitted requests, in dequeue order. The wire names
// are "low", "normal" and "high" (SolveOptions.Priority).
const (
	priorityLow    = 0
	priorityNormal = 1
	priorityHigh   = 2
)

// parsePriority maps the wire name to a class, defaulting to def for "".
func parsePriority(name string, def int) (int, bool) {
	switch name {
	case "":
		return def, true
	case "low":
		return priorityLow, true
	case "normal":
		return priorityNormal, true
	case "high":
		return priorityHigh, true
	}
	return 0, false
}

func priorityName(p int) string {
	switch p {
	case priorityLow:
		return "low"
	case priorityHigh:
		return "high"
	default:
		return "normal"
	}
}

// admissionQueue is the server's bounded admission queue: a mutex+cond
// priority queue replacing the original bounded channel. Higher priority
// classes dequeue first; within a class order is FIFO. It exists because
// three operations the channel cannot express are load-bearing for crash
// safety and overload control:
//
//   - remove: deadline eviction takes an expired job out of the middle of
//     the queue. remove-vs-pop under one mutex is the exactly-one-winner
//     protocol — whichever side extracts the job owns answering it.
//   - pushFront: a chaos-killed solve requeues at the head of its class
//     (it already waited once, and its checkpoint ages poorly), even while
//     the queue is closed for drain.
//   - priority pop: high-priority work overtakes queued normal/low work.
type admissionQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	closed bool
	// buckets[p] is the FIFO for priority class p, dequeued highest first.
	buckets [3][]*job
}

func newAdmissionQueue(capacity int) *admissionQueue {
	q := &admissionQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *admissionQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.sizeLocked()
}

func (q *admissionQueue) sizeLocked() int {
	n := 0
	for _, b := range q.buckets {
		n += len(b)
	}
	return n
}

// push appends j to its priority class. It fails when the queue is at
// capacity or closed — the admission-reject path.
func (q *admissionQueue) push(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.sizeLocked() >= q.cap {
		return false
	}
	q.buckets[j.priority] = append(q.buckets[j.priority], j)
	j.enqueued = time.Now()
	q.cond.Signal()
	return true
}

// pushFront puts j at the head of its priority class, ignoring capacity
// and the closed flag: it re-admits work that was already admitted once
// (chaos-killed resumes, which must complete even mid-drain).
func (q *admissionQueue) pushFront(j *job) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.buckets[j.priority] = append([]*job{j}, q.buckets[j.priority]...)
	j.enqueued = time.Now()
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed and empty.
// A closed queue keeps yielding its remaining jobs — drain semantics.
func (q *admissionQueue) pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for p := priorityHigh; p >= priorityLow; p-- {
			if b := q.buckets[p]; len(b) > 0 {
				j := b[0]
				q.buckets[p] = b[1:]
				return j, true
			}
		}
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
}

// remove extracts j if it is still queued, reporting whether this call won
// it. The caller that wins owns answering the job's client.
func (q *admissionQueue) remove(j *job) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[j.priority]
	for i, qj := range b {
		if qj == j {
			q.buckets[j.priority] = append(b[:i:i], b[i+1:]...)
			return true
		}
	}
	return false
}

// close stops admissions and wakes every popper; queued jobs keep draining.
func (q *admissionQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

// shedder is the adaptive overload controller: a CoDel-style admission
// gate driven by observed queue waits rather than queue length. Workers
// feed it the wait of every job they pick up; admission consults the p99
// over a sliding window. When that p99 exceeds the target, low- and
// normal-priority requests are shed with 503 + Retry-After while
// high-priority ones still pass — queue *length* says how much work is
// waiting, queue *wait* says whether the fleet is keeping up, and only the
// latter matters to a client deciding whether to retry here or elsewhere.
//
// A nil *shedder (ShedTarget zero) never sheds.
type shedder struct {
	target time.Duration
	window time.Duration

	mu      sync.Mutex
	samples []shedSample
}

type shedSample struct {
	at   time.Time
	wait time.Duration
}

// minShedSamples is how many in-window waits the shedder needs before it
// trusts its p99 — below this a single slow pickup would flap the gate.
const minShedSamples = 5

func newShedder(target time.Duration) *shedder {
	if target <= 0 {
		return nil
	}
	return &shedder{target: target, window: 5 * time.Second}
}

func (sh *shedder) observe(wait time.Duration) {
	if sh == nil {
		return
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pruneLocked(time.Now())
	sh.samples = append(sh.samples, shedSample{at: time.Now(), wait: wait})
}

// overloaded reports whether the sliding-window p99 queue wait exceeds the
// target.
func (sh *shedder) overloaded() bool {
	if sh == nil {
		return false
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pruneLocked(time.Now())
	if len(sh.samples) < minShedSamples {
		return false
	}
	waits := make([]time.Duration, len(sh.samples))
	for i, s := range sh.samples {
		waits[i] = s.wait
	}
	sort.Slice(waits, func(i, k int) bool { return waits[i] < waits[k] })
	idx := (len(waits)*99 + 99) / 100
	if idx > len(waits) {
		idx = len(waits)
	}
	return waits[idx-1] > sh.target
}

func (sh *shedder) pruneLocked(now time.Time) {
	cut := 0
	for cut < len(sh.samples) && now.Sub(sh.samples[cut].at) > sh.window {
		cut++
	}
	if cut > 0 {
		sh.samples = append(sh.samples[:0], sh.samples[cut:]...)
	}
}
