package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"incranneal/internal/encoding"
	"incranneal/internal/mqo"
	"incranneal/internal/sa"
	"incranneal/internal/solver"
)

func paperRequest(t *testing.T) (solver.Request, *encoding.MQOEncoding) {
	t.Helper()
	p := mqo.PaperExample()
	enc, err := encoding.EncodeMQO(p)
	if err != nil {
		t.Fatal(err)
	}
	return solver.Request{Model: enc.Model, Runs: 4, Sweeps: 100, Seed: 7}, enc
}

func TestZeroConfigIsTransparent(t *testing.T) {
	req, _ := paperRequest(t)
	inner := &sa.Solver{}
	wrapped := New(inner, Config{})
	want, err := inner.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wrapped.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("sample count changed: %d vs %d", len(got.Samples), len(want.Samples))
	}
	for i := range got.Samples {
		if got.Samples[i].Energy != want.Samples[i].Energy {
			t.Fatalf("sample %d energy changed: %v vs %v", i, got.Samples[i].Energy, want.Samples[i].Energy)
		}
	}
	if wrapped.Name() != "faulty(sa)" {
		t.Errorf("Name = %q", wrapped.Name())
	}
	if Wrap(inner, Config{}) != solver.Solver(inner) {
		t.Error("Wrap with an empty schedule must return the device unchanged")
	}
}

func TestTransientSchedule(t *testing.T) {
	req, _ := paperRequest(t)
	s := New(&sa.Solver{}, Config{TransientFirst: 2, TransientEvery: 4})
	var errs []error
	for i := 0; i < 8; i++ {
		_, err := s.Solve(context.Background(), req)
		errs = append(errs, err)
	}
	// Solves 0,1 fail (first two); solves 3 and 7 fail (every 4th, 1-based).
	wantFail := map[int]bool{0: true, 1: true, 3: true, 7: true}
	for i, err := range errs {
		if wantFail[i] {
			if err == nil {
				t.Errorf("solve %d succeeded, want transient failure", i)
				continue
			}
			if !errors.Is(err, ErrInjected) || !solver.IsTransient(err) {
				t.Errorf("solve %d error %v: want transient ErrInjected", i, err)
			}
		} else if err != nil {
			t.Errorf("solve %d failed unexpectedly: %v", i, err)
		}
	}
	st := s.Stats()
	if st.Solves != 8 || st.Transients != 4 || st.Terminals != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTerminalAfterKillsDevice(t *testing.T) {
	req, _ := paperRequest(t)
	s := New(&sa.Solver{}, Config{TerminalAfter: 2})
	for i := 0; i < 2; i++ {
		if _, err := s.Solve(context.Background(), req); err != nil {
			t.Fatalf("solve %d failed before the kill point: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ {
		_, err := s.Solve(context.Background(), req)
		if err == nil {
			t.Fatal("dead device succeeded")
		}
		if solver.IsTransient(err) {
			t.Errorf("terminal failure marked transient: %v", err)
		}
		if !errors.Is(err, ErrInjected) {
			t.Errorf("terminal failure does not wrap ErrInjected: %v", err)
		}
	}
	if st := s.Stats(); st.Terminals != 3 {
		t.Errorf("terminals = %d, want 3", st.Terminals)
	}
}

func TestCorruptionIsDeterministicAndConsistent(t *testing.T) {
	req, enc := paperRequest(t)
	s1 := New(&sa.Solver{}, Config{Corrupt: true, Seed: 11})
	s2 := New(&sa.Solver{}, Config{Corrupt: true, Seed: 11})
	r1, err := s1.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Samples) != len(r2.Samples) {
		t.Fatal("corruption changed sample counts between identical runs")
	}
	for i := range r1.Samples {
		if r1.Samples[i].Energy != r2.Samples[i].Energy {
			t.Fatal("corruption not deterministic for fixed seeds")
		}
	}
	// Invariants after corruption: energies true, samples sorted.
	for i, smp := range r1.Samples {
		if got := enc.Model.Energy(smp.Assignment); got != smp.Energy {
			t.Errorf("sample %d energy %v, recomputed %v", i, smp.Energy, got)
		}
		if i > 0 && smp.Energy < r1.Samples[i-1].Energy {
			t.Error("corrupted samples not re-sorted")
		}
	}
	// A different injector seed must flip different bits.
	s3 := New(&sa.Solver{}, Config{Corrupt: true, Seed: 12})
	r3, err := s3.Solve(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	same := len(r1.Samples) == len(r3.Samples)
	if same {
		for i := range r1.Samples {
			if r1.Samples[i].Energy != r3.Samples[i].Energy {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different injector seeds produced identical corruption (suspicious)")
	}
}

func TestEmptyEveryReturnsNoSamples(t *testing.T) {
	req, _ := paperRequest(t)
	s := New(&sa.Solver{}, Config{EmptyEvery: 2})
	for i := 0; i < 4; i++ {
		res, err := s.Solve(context.Background(), req)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		_, ok := res.Best()
		wantEmpty := (i+1)%2 == 0
		if wantEmpty == ok {
			t.Errorf("solve %d: samples present=%v, want empty=%v", i, ok, wantEmpty)
		}
	}
	if st := s.Stats(); st.Emptied != 2 {
		t.Errorf("emptied = %d, want 2", st.Emptied)
	}
}

func TestCapacityFlapping(t *testing.T) {
	inner := &sa.Solver{}
	s := New(inner, Config{FlapEvery: 3})
	for i := 1; i <= 9; i++ {
		got := s.Capacity()
		if i%3 == 0 {
			if got != 1 {
				t.Errorf("call %d capacity = %d, want flapped 1", i, got)
			}
		} else if got != inner.Capacity() {
			t.Errorf("call %d capacity = %d, want %d", i, got, inner.Capacity())
		}
	}
	if st := s.Stats(); st.Flaps != 3 {
		t.Errorf("flaps = %d, want 3", st.Flaps)
	}
}

func TestLatencyRespectsCancellation(t *testing.T) {
	req, _ := paperRequest(t)
	s := New(&sa.Solver{}, Config{Latency: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Device contract: cancelled solves return best-so-far (here, a
		// zero-sweep result), not an error.
		if _, err := s.Solve(ctx, req); err != nil {
			t.Errorf("cancelled solve errored: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("latency sleep ignored context cancellation")
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("transient-first=2, transient-every=5,terminal-after=8,corrupt=0.5,latency=3ms,empty-every=4,flap-every=6,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 9, TransientFirst: 2, TransientEvery: 5, TerminalAfter: 8,
		Corrupt: true, CorruptRate: 0.5, EmptyEvery: 4,
		Latency: 3 * time.Millisecond, FlapEvery: 6,
	}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	cfg, err = ParseSpec("corrupt")
	if err != nil || !cfg.Corrupt || cfg.CorruptRate != 0 {
		t.Errorf("bare corrupt: cfg=%+v err=%v", cfg, err)
	}
	if cfg, err := ParseSpec("  "); err != nil || cfg.enabled() {
		t.Errorf("blank spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"bogus=1", "transient-first", "transient-first=x", "corrupt=2", "latency", "latency=zzz", "seed=-1"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
}

func TestSolveLargeDelegation(t *testing.T) {
	req, _ := paperRequest(t)
	// sa.Solver has no SolveLarge: the wrapper must fail terminally.
	s := New(&sa.Solver{}, Config{})
	if _, err := s.SolveLarge(context.Background(), req); err == nil {
		t.Error("SolveLarge over a plain solver must fail")
	}
}
