// Package faultinject wraps any solver.Solver in a deterministic,
// seed-driven fault injector. It generalises the ad-hoc test doubles the
// pipeline's robustness tests grew organically and makes the same failure
// modes available to the conformance suite and the CLIs (-inject-faults):
//
//   - transient errors on a schedule (the first N solves, or every Nth),
//     marked retryable via solver.MarkTransient so the resilience
//     middleware's Retry layer re-attempts them;
//   - a terminal kill switch (every solve after the first N successes fails
//     unrecoverably), modelling a device going away mid-run;
//   - sample corruption (deterministic bit flips producing the
//     constraint-violating assignments noisy hardware returns);
//   - empty results (a solve "succeeds" with zero samples, as a remote
//     cancellation can);
//   - artificial latency per solve; and
//   - capacity flapping (the advertised variable capacity collapses
//     periodically, as rate-limited cloud devices do).
//
// All decisions derive from the configuration and per-solver call counters
// (plus the request seed for corruption), never from wall-clock time or an
// unseeded RNG, so a fault schedule replays identically run to run. Counter-
// based schedules are exactly reproducible whenever device solves are issued
// sequentially (the incremental and default strategies); under the parallel
// strategy the counter order follows goroutine interleaving, which is the
// intended behaviour for chaos testing but not for bit-identity assertions.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"incranneal/internal/solver"
)

// ErrInjected is the sentinel all injected failures wrap, so tests and
// callers can errors.Is them apart from genuine device errors.
var ErrInjected = errors.New("faultinject: injected device failure")

// Config is a deterministic fault schedule. The zero value injects nothing:
// the wrapper is then a transparent pass-through, which the conformance
// suite uses to pin that wrapping alone never changes results.
type Config struct {
	// Seed drives the corruption RNG (combined with each request's seed).
	Seed int64
	// TransientFirst fails the first N solves with a transient error.
	TransientFirst int
	// TransientEvery additionally fails every Nth solve (1-based) with a
	// transient error. 0 disables.
	TransientEvery int
	// TerminalAfter kills the device after N successful solves: every later
	// solve fails terminally. 0 disables.
	TerminalAfter int
	// Corrupt flips assignment bits of every returned sample with
	// probability CorruptRate, recomputing energies and re-sorting — the
	// infeasible-sample failure mode of real annealing hardware.
	Corrupt bool
	// CorruptRate is the per-bit flip probability; 0 means 1/3.
	CorruptRate float64
	// EmptyEvery returns a zero-sample result on every Nth solve (1-based).
	// 0 disables.
	EmptyEvery int
	// Latency sleeps this long before each solve (respecting context
	// cancellation), simulating remote round-trips.
	Latency time.Duration
	// FlapEvery makes every Nth Capacity() call (1-based) report a capacity
	// of 1, simulating a device intermittently refusing large requests.
	// 0 disables.
	FlapEvery int

	// The remaining fields schedule serve-layer faults; they are consumed
	// by NewChaos, not by the device wrapper (see Chaos).

	// KillWorkerEvery kills the worker slot on every Nth solve attempt
	// (1-based): the serve layer cancels the in-flight solve and requeues
	// the request from its last checkpoint. 0 disables.
	KillWorkerEvery int
	// SlowWorkerEvery delays every Nth solve attempt by SlowWorkerDelay
	// before it starts, driving requests into the watchdog. 0 disables.
	SlowWorkerEvery int
	// SlowWorkerDelay is the delay SlowWorkerEvery applies; 0 means 50ms.
	SlowWorkerDelay time.Duration
	// JournalFailEvery fails every Nth admission-journal write (1-based).
	// 0 disables.
	JournalFailEvery int
}

// enabled reports whether the schedule injects anything at all.
func (c Config) enabled() bool {
	return c.TransientFirst > 0 || c.TransientEvery > 0 || c.TerminalAfter > 0 ||
		c.Corrupt || c.EmptyEvery > 0 || c.Latency > 0 || c.FlapEvery > 0
}

// Stats counts the faults a Solver actually injected.
type Stats struct {
	Solves     int // total Solve calls observed
	Transients int // transient errors injected
	Terminals  int // terminal errors injected
	Corrupted  int // results whose samples were corrupted
	Emptied    int // results emptied of samples
	Flaps      int // Capacity() calls that reported the flapped capacity
}

// Solver injects the configured faults around Inner. Safe for concurrent
// use; the schedule counters are shared across goroutines.
type Solver struct {
	Inner solver.Solver
	Cfg   Config

	mu        sync.Mutex
	solves    int // Solve calls so far (0-based index of the next call)
	successes int // inner solves that returned a usable result
	capCalls  int
	stats     Stats
}

// New wraps inner with the fault schedule cfg.
func New(inner solver.Solver, cfg Config) *Solver {
	return &Solver{Inner: inner, Cfg: cfg}
}

// Name tags the inner device so traces show which results passed through
// the injector.
func (s *Solver) Name() string { return "faulty(" + s.Inner.Name() + ")" }

// Capacity reports the inner capacity, flapping to 1 on the configured
// schedule.
func (s *Solver) Capacity() int {
	if s.Cfg.FlapEvery <= 0 {
		return s.Inner.Capacity()
	}
	s.mu.Lock()
	s.capCalls++
	flap := s.capCalls%s.Cfg.FlapEvery == 0
	if flap {
		s.stats.Flaps++
	}
	s.mu.Unlock()
	if flap {
		return 1
	}
	return s.Inner.Capacity()
}

// Stats returns a snapshot of the injected-fault counters.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Solve applies the fault schedule, delegating to the inner device when the
// current solve is scheduled to succeed.
func (s *Solver) Solve(ctx context.Context, req solver.Request) (*solver.Result, error) {
	return s.solve(ctx, req, s.Inner.Solve)
}

// SolveLarge forwards to the inner device's vendor decomposition under the
// same fault schedule. Devices without one fail terminally, exactly as the
// bare device would fail the type assertion.
func (s *Solver) SolveLarge(ctx context.Context, req solver.Request) (*solver.Result, error) {
	ls, ok := s.Inner.(solver.LargeSolver)
	if !ok {
		return nil, fmt.Errorf("faultinject: device %s offers no default partitioning", s.Inner.Name())
	}
	return s.solve(ctx, req, ls.SolveLarge)
}

func (s *Solver) solve(ctx context.Context, req solver.Request, inner func(context.Context, solver.Request) (*solver.Result, error)) (*solver.Result, error) {
	s.mu.Lock()
	idx := s.solves // 0-based
	s.solves++
	s.stats.Solves++
	var fault error
	switch {
	case s.Cfg.TerminalAfter > 0 && s.successes >= s.Cfg.TerminalAfter:
		s.stats.Terminals++
		fault = fmt.Errorf("%w: terminal, solve %d", ErrInjected, idx)
	case idx < s.Cfg.TransientFirst,
		s.Cfg.TransientEvery > 0 && (idx+1)%s.Cfg.TransientEvery == 0:
		s.stats.Transients++
		fault = solver.MarkTransient(fmt.Errorf("%w: transient, solve %d", ErrInjected, idx))
	}
	empty := fault == nil && s.Cfg.EmptyEvery > 0 && (idx+1)%s.Cfg.EmptyEvery == 0
	if empty {
		s.stats.Emptied++
	}
	s.mu.Unlock()

	if s.Cfg.Latency > 0 {
		t := time.NewTimer(s.Cfg.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
		}
	}
	if fault != nil {
		return nil, fault
	}
	if empty {
		return &solver.Result{}, nil
	}
	res, err := inner(ctx, req)
	if err != nil {
		return nil, err
	}
	if s.Cfg.Corrupt {
		s.corrupt(req, res)
	}
	s.mu.Lock()
	s.successes++
	s.mu.Unlock()
	return res, nil
}

// corrupt deterministically flips assignment bits of every sample,
// producing over- and under-selected queries, then restores the Result
// invariants (true energies, ascending order).
func (s *Solver) corrupt(req solver.Request, res *solver.Result) {
	rate := s.Cfg.CorruptRate
	if rate <= 0 {
		rate = 1.0 / 3.0
	}
	rng := rand.New(rand.NewSource(s.Cfg.Seed ^ req.Seed))
	for i := range res.Samples {
		for v := range res.Samples[i].Assignment {
			if rng.Float64() < rate {
				res.Samples[i].Assignment[v] ^= 1
			}
		}
		res.Samples[i].Energy = req.Model.Energy(res.Samples[i].Assignment)
	}
	res.SortSamples()
	s.mu.Lock()
	s.stats.Corrupted++
	s.mu.Unlock()
}

// ValidDirectives lists every directive ParseSpec accepts, in the order
// they are documented. SpecError messages embed it so a typo'd -inject or
// -chaos flag teaches the operator the full grammar.
var ValidDirectives = []string{
	"transient-first=N",
	"transient-every=N",
	"terminal-after=N",
	"corrupt[=RATE]",
	"empty-every=N",
	"latency=DURATION",
	"flap-every=N",
	"seed=N",
	"kill-worker-every=N",
	"slow-worker-every=N",
	"slow-worker-delay=DURATION",
	"journal-fail-every=N",
}

// SpecError reports a fault-spec parse failure with the offending token
// preserved, so callers (CLI flag validation, the serve config loader) can
// point at exactly what was typed.
type SpecError struct {
	// Token is the comma-separated token that failed, as written.
	Token string
	// Directive is the directive name parsed out of Token ("" when the
	// token had no recognisable key).
	Directive string
	// Reason says what was wrong: unknown directive, missing value, or a
	// malformed value.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("faultinject: bad directive %q: %s (valid directives: %s)",
		e.Token, e.Reason, strings.Join(ValidDirectives, ", "))
}

// ParseSpec parses the CLI fault-schedule grammar: a comma-separated list
// of directives, e.g.
//
//	transient-first=2,transient-every=5,terminal-after=8,corrupt,latency=1ms
//
// Device-level directives: transient-first=N, transient-every=N,
// terminal-after=N, corrupt[=RATE], empty-every=N, latency=DURATION,
// flap-every=N, seed=N. Serve-layer directives (consumed via NewChaos):
// kill-worker-every=N, slow-worker-every=N, slow-worker-delay=DURATION,
// journal-fail-every=N. Parse failures are *SpecError values naming the
// offending token and listing the valid directives.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		key, val, hasVal := strings.Cut(tok, "=")
		fail := func(reason string) error {
			return &SpecError{Token: tok, Directive: key, Reason: reason}
		}
		intVal := func() (int, error) {
			if !hasVal {
				return 0, fail("needs a value")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return 0, fail(fmt.Sprintf("value %q is not a non-negative integer", val))
			}
			return n, nil
		}
		durVal := func() (time.Duration, error) {
			if !hasVal {
				return 0, fail("needs a duration value")
			}
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return 0, fail(fmt.Sprintf("value %q is not a non-negative duration", val))
			}
			return d, nil
		}
		var err error
		switch key {
		case "transient-first":
			cfg.TransientFirst, err = intVal()
		case "transient-every":
			cfg.TransientEvery, err = intVal()
		case "terminal-after":
			cfg.TerminalAfter, err = intVal()
		case "empty-every":
			cfg.EmptyEvery, err = intVal()
		case "flap-every":
			cfg.FlapEvery, err = intVal()
		case "kill-worker-every":
			cfg.KillWorkerEvery, err = intVal()
		case "slow-worker-every":
			cfg.SlowWorkerEvery, err = intVal()
		case "journal-fail-every":
			cfg.JournalFailEvery, err = intVal()
		case "slow-worker-delay":
			cfg.SlowWorkerDelay, err = durVal()
		case "seed":
			var n int
			n, err = intVal()
			cfg.Seed = int64(n)
		case "corrupt":
			cfg.Corrupt = true
			if hasVal {
				var perr error
				cfg.CorruptRate, perr = strconv.ParseFloat(val, 64)
				if perr != nil || cfg.CorruptRate <= 0 || cfg.CorruptRate > 1 {
					err = fail(fmt.Sprintf("rate %q is not in (0, 1]", val))
				}
			}
		case "latency":
			cfg.Latency, err = durVal()
		default:
			err = fail("unknown directive")
		}
		if err != nil {
			return Config{}, err
		}
	}
	return cfg, nil
}

// Wrap applies the parsed spec to dev, returning dev unchanged when the
// spec injects nothing.
func Wrap(dev solver.Solver, cfg Config) solver.Solver {
	if !cfg.enabled() {
		return dev
	}
	return New(dev, cfg)
}
