package faultinject

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpecChaosDirectives(t *testing.T) {
	cfg, err := ParseSpec("kill-worker-every=3,slow-worker-every=4,slow-worker-delay=20ms,journal-fail-every=5")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		KillWorkerEvery: 3, SlowWorkerEvery: 4,
		SlowWorkerDelay: 20 * time.Millisecond, JournalFailEvery: 5,
	}
	if cfg != want {
		t.Errorf("ParseSpec = %+v, want %+v", cfg, want)
	}
	// Chaos-only specs do not enable the device wrapper...
	if cfg.enabled() {
		t.Error("chaos-only spec enabled the device wrapper")
	}
	// ...but do enable the serve-layer fault source.
	if NewChaos(cfg) == nil {
		t.Error("chaos-only spec produced no Chaos")
	}
	// And device-only specs produce no Chaos.
	devCfg, err := ParseSpec("transient-first=2")
	if err != nil {
		t.Fatal(err)
	}
	if NewChaos(devCfg) != nil {
		t.Error("device-only spec produced a Chaos")
	}
}

func TestParseSpecStructuredErrors(t *testing.T) {
	cases := []struct {
		spec          string
		wantToken     string
		wantDirective string
		wantReason    string // substring
	}{
		{"bogus=1", "bogus=1", "bogus", "unknown directive"},
		{"transient-first=2,wat", "wat", "wat", "unknown directive"},
		{"kill-worker-every", "kill-worker-every", "kill-worker-every", "needs a value"},
		{"kill-worker-every=x", "kill-worker-every=x", "kill-worker-every", "not a non-negative integer"},
		{"slow-worker-delay=fast", "slow-worker-delay=fast", "slow-worker-delay", "not a non-negative duration"},
		{"slow-worker-delay=-1s", "slow-worker-delay=-1s", "slow-worker-delay", "not a non-negative duration"},
		{"journal-fail-every=-2", "journal-fail-every=-2", "journal-fail-every", "not a non-negative integer"},
		{"corrupt=7", "corrupt=7", "corrupt", "not in (0, 1]"},
		{"latency", "latency", "latency", "needs a duration"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", c.spec)
			continue
		}
		var se *SpecError
		if !errors.As(err, &se) {
			t.Errorf("ParseSpec(%q) error is %T, want *SpecError", c.spec, err)
			continue
		}
		if se.Token != c.wantToken {
			t.Errorf("ParseSpec(%q): Token %q, want %q", c.spec, se.Token, c.wantToken)
		}
		if se.Directive != c.wantDirective {
			t.Errorf("ParseSpec(%q): Directive %q, want %q", c.spec, se.Directive, c.wantDirective)
		}
		if !strings.Contains(se.Reason, c.wantReason) {
			t.Errorf("ParseSpec(%q): Reason %q, want substring %q", c.spec, se.Reason, c.wantReason)
		}
		// The message must teach the full grammar: every valid directive
		// appears in it, the serve-layer ones included.
		msg := err.Error()
		for _, d := range ValidDirectives {
			if !strings.Contains(msg, d) {
				t.Errorf("ParseSpec(%q) error omits valid directive %q: %s", c.spec, d, msg)
			}
		}
	}
}

func TestChaosSchedules(t *testing.T) {
	ch := NewChaos(Config{KillWorkerEvery: 3, SlowWorkerEvery: 2, SlowWorkerDelay: 5 * time.Millisecond, JournalFailEvery: 2})
	var kills, slows int
	for i := 0; i < 12; i++ {
		if ch.KillNextSolve() {
			kills++
		}
		if d := ch.SlowNextSolve(); d != 0 {
			if d != 5*time.Millisecond {
				t.Errorf("slow delay %v, want 5ms", d)
			}
			slows++
		}
	}
	if kills != 4 {
		t.Errorf("12 attempts at kill-every=3: %d kills, want 4", kills)
	}
	if slows != 6 {
		t.Errorf("12 attempts at slow-every=2: %d slows, want 6", slows)
	}
	var jfails int
	for i := 0; i < 10; i++ {
		if ch.FailNextJournalWrite() {
			jfails++
		}
	}
	if jfails != 5 {
		t.Errorf("10 writes at journal-fail-every=2: %d failures, want 5", jfails)
	}
	st := ch.Stats()
	if st.WorkerKills != kills || st.SlowedSolves != slows || st.JournalFailures != jfails {
		t.Errorf("stats %+v disagree with observed kills=%d slows=%d jfails=%d", st, kills, slows, jfails)
	}

	// Default slow delay.
	ch2 := NewChaos(Config{SlowWorkerEvery: 1})
	if d := ch2.SlowNextSolve(); d != 50*time.Millisecond {
		t.Errorf("default slow delay %v, want 50ms", d)
	}
}

func TestChaosNilSafe(t *testing.T) {
	var ch *Chaos
	if ch.KillNextSolve() {
		t.Error("nil Chaos killed a solve")
	}
	if ch.SlowNextSolve() != 0 {
		t.Error("nil Chaos slowed a solve")
	}
	if ch.FailNextJournalWrite() {
		t.Error("nil Chaos failed a journal write")
	}
	if ch.Stats() != (ChaosStats{}) {
		t.Error("nil Chaos has stats")
	}
}
