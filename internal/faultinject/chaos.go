package faultinject

import (
	"sync"
	"time"
)

// Chaos is the serve-layer counterpart of Solver: where Solver injects
// faults between the pipeline and a device, Chaos injects them between the
// serving daemon and its own machinery — killing worker slots mid-solve,
// slowing workers past their watchdog budget, and failing admission-journal
// writes. The serve package polls it at each decision point; the chaos
// bench figure and the CI chaos smoke drive it via the same CLI spec
// grammar as the device faults (kill-worker-every=N, slow-worker-every=N,
// slow-worker-delay=DUR, journal-fail-every=N).
//
// Decisions are pure functions of per-kind call counters, so a schedule is
// reproducible for a fixed arrival order; under concurrent workers the
// interleaving picks which request absorbs each fault, which is the point
// of a chaos harness — the invariants must hold regardless.
//
// A nil *Chaos is valid and injects nothing, so callers thread it through
// unconditionally.
type Chaos struct {
	mu       sync.Mutex
	cfg      Config
	solves   int
	journals int
	stats    ChaosStats
}

// ChaosStats counts the serve-layer faults a Chaos actually injected.
type ChaosStats struct {
	WorkerKills     int // solves whose worker was killed mid-flight
	SlowedSolves    int // solves delayed by the slow-worker schedule
	JournalFailures int // journal writes failed
}

// NewChaos builds a serve-layer fault source from cfg, nil when cfg
// schedules no serve-layer faults (device-level directives are ignored
// here; wrap the device with New/Wrap for those).
func NewChaos(cfg Config) *Chaos {
	if !cfg.chaosEnabled() {
		return nil
	}
	return &Chaos{cfg: cfg}
}

// chaosEnabled reports whether the schedule injects any serve-layer fault.
func (c Config) chaosEnabled() bool {
	return c.KillWorkerEvery > 0 || c.SlowWorkerEvery > 0 || c.JournalFailEvery > 0
}

// KillNextSolve reports whether the worker about to run a solve should be
// killed mid-flight (the serve layer cancels the solve context and
// requeues the request from its checkpoint). Counts one solve attempt per
// call, shared with SlowNextSolve's schedule.
func (c *Chaos) KillNextSolve() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.solves++
	if c.cfg.KillWorkerEvery > 0 && c.solves%c.cfg.KillWorkerEvery == 0 {
		c.stats.WorkerKills++
		return true
	}
	return false
}

// SlowNextSolve returns the artificial delay the next solve should suffer
// before starting, zero for none. It shares the solve counter advanced by
// KillNextSolve, so call it once per attempt, after KillNextSolve.
func (c *Chaos) SlowNextSolve() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.SlowWorkerEvery > 0 && c.solves%c.cfg.SlowWorkerEvery == 0 {
		c.stats.SlowedSolves++
		d := c.cfg.SlowWorkerDelay
		if d <= 0 {
			d = 50 * time.Millisecond
		}
		return d
	}
	return 0
}

// FailNextJournalWrite reports whether the next admission-journal write
// should fail, exercising the daemon's journal-degradation path (serve
// keeps accepting, counts the failure, and the request simply loses crash
// protection).
func (c *Chaos) FailNextJournalWrite() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journals++
	if c.cfg.JournalFailEvery > 0 && c.journals%c.cfg.JournalFailEvery == 0 {
		c.stats.JournalFailures++
		return true
	}
	return false
}

// Stats returns a snapshot of the injected-fault counters. Nil-safe.
func (c *Chaos) Stats() ChaosStats {
	if c == nil {
		return ChaosStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
