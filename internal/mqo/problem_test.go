package mqo

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewProblemRejectsInvalidInput(t *testing.T) {
	cases := []struct {
		name    string
		costs   [][]float64
		savings []Saving
	}{
		{"empty query", [][]float64{{1, 2}, {}}, nil},
		{"zero cost", [][]float64{{0, 2}}, nil},
		{"negative cost", [][]float64{{-1}}, nil},
		{"saving out of range", [][]float64{{1}, {2}}, []Saving{{P1: 0, P2: 5, Value: 1}}},
		{"self saving", [][]float64{{1}, {2}}, []Saving{{P1: 1, P2: 1, Value: 1}}},
		{"intra-query saving", [][]float64{{1, 2}, {3}}, []Saving{{P1: 0, P2: 1, Value: 1}}},
		{"negative saving", [][]float64{{1}, {2}}, []Saving{{P1: 0, P2: 1, Value: -1}}},
		{"duplicate saving", [][]float64{{1}, {2}}, []Saving{{P1: 0, P2: 1, Value: 1}, {P1: 1, P2: 0, Value: 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewProblem(tc.costs, tc.savings); err == nil {
				t.Fatalf("NewProblem accepted invalid input %v / %v", tc.costs, tc.savings)
			}
		})
	}
}

func TestProblemAccessors(t *testing.T) {
	p := PaperExample()
	if got := p.NumQueries(); got != 4 {
		t.Errorf("NumQueries = %d, want 4", got)
	}
	if got := p.NumPlans(); got != 8 {
		t.Errorf("NumPlans = %d, want 8", got)
	}
	if got := p.NumSavings(); got != 10 {
		t.Errorf("NumSavings = %d, want 10", got)
	}
	if got := p.QueryOf(6); got != 3 {
		t.Errorf("QueryOf(6) = %d, want 3", got)
	}
	if got := p.Cost(6); got != 14 {
		t.Errorf("Cost(p7) = %v, want 14", got)
	}
	if got := p.Plans(2); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("Plans(q3) = %v, want [4 5]", got)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestSavingBetween(t *testing.T) {
	p := PaperExample()
	cases := []struct {
		p1, p2 int
		want   float64
	}{
		{1, 3, 5}, {3, 1, 5}, // s(p2,p4), both orders
		{1, 6, 5}, // s(p2,p7)
		{0, 2, 1}, // s(p1,p3)
		{0, 7, 0}, // no saving
		{2, 3, 0}, // same query, no saving possible
	}
	for _, tc := range cases {
		if got := p.SavingBetween(tc.p1, tc.p2); got != tc.want {
			t.Errorf("SavingBetween(%d,%d) = %v, want %v", tc.p1, tc.p2, got, tc.want)
		}
	}
}

func TestSavingBetweenMatchesLinearScan(t *testing.T) {
	// Property: the binary search agrees with a scan on random instances.
	f := func(seed int64) bool {
		p := randomProblem(rand.New(rand.NewSource(seed)), 6, 3, 0.4)
		for p1 := 0; p1 < p.NumPlans(); p1++ {
			for p2 := 0; p2 < p.NumPlans(); p2++ {
				if p1 == p2 {
					continue
				}
				var want float64
				for _, s := range p.Savings() {
					c := Saving{P1: p1, P2: p2}.Canonical()
					if s.P1 == c.P1 && s.P2 == c.P2 {
						want = s.Value
					}
				}
				if got := p.SavingBetween(p1, p2); got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMaxIncidentSavings(t *testing.T) {
	p := PaperExample()
	// p5 (index 4) is incident to s45=5, s57=5, s58=1 → 11; p2 (index 1)
	// to s23=1, s24=5, s27=5 → 11; p7 (index 6) to s27=5, s57=5, s67=1 → 11.
	if got := p.MaxIncidentSavings(); got != 11 {
		t.Errorf("MaxIncidentSavings = %v, want 11", got)
	}
}

func TestSolutionSpaceSize(t *testing.T) {
	p := PaperExample()
	// 2^4 = 16 solutions → log10 ≈ 1.204.
	got := p.SolutionSpaceSize()
	if got < 1.20 || got > 1.21 {
		t.Errorf("SolutionSpaceSize = %v, want ~1.204", got)
	}
}

// randomProblem builds a random valid instance for property tests.
func randomProblem(rng *rand.Rand, queries, ppq int, density float64) *Problem {
	costs := make([][]float64, queries)
	for q := range costs {
		cs := make([]float64, ppq)
		for i := range cs {
			cs[i] = 1 + rng.Float64()*19
		}
		costs[q] = cs
	}
	var savings []Saving
	for q1 := 0; q1 < queries; q1++ {
		for q2 := q1 + 1; q2 < queries; q2++ {
			for i := 0; i < ppq; i++ {
				for j := 0; j < ppq; j++ {
					if rng.Float64() < density {
						savings = append(savings, Saving{
							P1:    q1*ppq + i,
							P2:    q2*ppq + j,
							Value: 1 + rng.Float64()*9,
						})
					}
				}
			}
		}
	}
	p, err := NewProblem(costs, savings)
	if err != nil {
		panic(err)
	}
	return p
}
