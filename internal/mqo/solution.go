package mqo

import (
	"fmt"
	"sort"
)

// Solution assigns one execution plan to each query of a Problem.
//
// Selected[q] holds the global plan index chosen for query q, or Unassigned
// if the query has not been decided yet (partial solutions appear during
// incremental optimisation).
type Solution struct {
	Selected []int
}

// Unassigned marks a query without a selected plan in a partial Solution.
const Unassigned = -1

// NewSolution returns an empty (fully unassigned) solution for p.
func NewSolution(p *Problem) *Solution {
	sel := make([]int, p.NumQueries())
	for i := range sel {
		sel[i] = Unassigned
	}
	return &Solution{Selected: sel}
}

// Clone returns a deep copy of s.
func (s *Solution) Clone() *Solution {
	sel := make([]int, len(s.Selected))
	copy(sel, s.Selected)
	return &Solution{Selected: sel}
}

// Complete reports whether every query has a selected plan.
func (s *Solution) Complete() bool {
	for _, pl := range s.Selected {
		if pl == Unassigned {
			return false
		}
	}
	return true
}

// NumAssigned returns the number of queries with a selected plan.
func (s *Solution) NumAssigned() int {
	n := 0
	for _, pl := range s.Selected {
		if pl != Unassigned {
			n++
		}
	}
	return n
}

// SelectedPlans returns the sorted list of selected plan indices, skipping
// unassigned queries.
func (s *Solution) SelectedPlans() []int {
	out := make([]int, 0, len(s.Selected))
	for _, pl := range s.Selected {
		if pl != Unassigned {
			out = append(out, pl)
		}
	}
	sort.Ints(out)
	return out
}

// Merge copies every assignment of other into s. It returns an error if
// other assigns a query that s has already assigned to a different plan.
func (s *Solution) Merge(other *Solution) error {
	if len(other.Selected) != len(s.Selected) {
		return fmt.Errorf("mqo: merging solutions of different problem sizes (%d vs %d)", len(other.Selected), len(s.Selected))
	}
	for q, pl := range other.Selected {
		if pl == Unassigned {
			continue
		}
		if s.Selected[q] != Unassigned && s.Selected[q] != pl {
			return fmt.Errorf("mqo: conflicting assignment for query %d (%d vs %d)", q, s.Selected[q], pl)
		}
		s.Selected[q] = pl
	}
	return nil
}

// Validate checks that s is a structurally valid (possibly partial)
// solution for p: every assigned plan exists and belongs to the query it is
// assigned to.
func (s *Solution) Validate(p *Problem) error {
	if len(s.Selected) != p.NumQueries() {
		return fmt.Errorf("mqo: solution covers %d queries, problem has %d", len(s.Selected), p.NumQueries())
	}
	for q, pl := range s.Selected {
		if pl == Unassigned {
			continue
		}
		if pl < 0 || pl >= p.NumPlans() {
			return fmt.Errorf("mqo: query %d assigned out-of-range plan %d", q, pl)
		}
		if p.QueryOf(pl) != q {
			return fmt.Errorf("mqo: query %d assigned plan %d which belongs to query %d", q, pl, p.QueryOf(pl))
		}
	}
	return nil
}

// Cost returns C(P_e) = Σ c_i − Σ s_ij over the assigned plans of s,
// counting a saving when both of its plans are selected. Unassigned queries
// contribute nothing, so Cost on a partial solution is the cost of the
// partial plan set.
func (s *Solution) Cost(p *Problem) float64 {
	return s.CostBuffered(p, make([]bool, p.NumPlans()))
}

// CostBuffered is Cost with a caller-provided plan-selection scratch buffer
// (len ≥ NumPlans; it is cleared first), for hot decode loops that evaluate
// many candidate solutions. The float accumulation order matches Cost
// exactly.
func (s *Solution) CostBuffered(p *Problem, selected []bool) float64 {
	selected = selected[:p.NumPlans()]
	for i := range selected {
		selected[i] = false
	}
	var total float64
	for _, pl := range s.Selected {
		if pl == Unassigned {
			continue
		}
		selected[pl] = true
		total += p.Cost(pl)
	}
	for _, sv := range p.Savings() {
		if selected[sv.P1] && selected[sv.P2] {
			total -= sv.Value
		}
	}
	return total
}

// MarginalCost returns the cost change of additionally assigning plan pl to
// its query, relative to the current (partial) assignment in s: the plan's
// execution cost minus all savings it shares with already-selected plans.
// The query of pl must currently be unassigned or assigned to pl itself.
func (s *Solution) MarginalCost(p *Problem, pl int) float64 {
	cost := p.Cost(pl)
	selected := make(map[int]bool, len(s.Selected))
	for _, sp := range s.Selected {
		if sp != Unassigned {
			selected[sp] = true
		}
	}
	for _, sv := range p.SavingsOf(pl) {
		other := sv.P1
		if other == pl {
			other = sv.P2
		}
		if selected[other] {
			cost -= sv.Value
		}
	}
	return cost
}

// GreedySolution selects, for every query independently, the plan with the
// lowest individual execution cost — the naive single-query optimiser the
// paper contrasts MQO against (Example 3.1).
func GreedySolution(p *Problem) *Solution {
	s := NewSolution(p)
	for q := 0; q < p.NumQueries(); q++ {
		best, bestCost := Unassigned, 0.0
		for _, pl := range p.Plans(q) {
			if best == Unassigned || p.Cost(pl) < bestCost {
				best, bestCost = pl, p.Cost(pl)
			}
		}
		s.Selected[q] = best
	}
	return s
}

// Repair turns an arbitrary plan-selection bitset into a valid Solution,
// implementing the validity post-processing of Sec. 4.2: if several plans of
// a query are selected, keep the one with the lowest marginal cost w.r.t.
// the plans kept so far; if none is selected, pick the best among all of the
// query's plans the same way.
func Repair(p *Problem, selected []bool) *Solution {
	s := NewSolution(p)
	RepairInto(p, selected, s, make([]bool, p.NumPlans()))
	return s
}

// RepairInto is Repair writing into a caller-provided Solution and reusing a
// chosen-plan scratch buffer (len ≥ NumPlans; it is cleared first), so the
// per-sample decode loop allocates nothing. into must cover p's queries.
func RepairInto(p *Problem, selected []bool, into *Solution, chosen []bool) {
	chosen = chosen[:p.NumPlans()]
	for i := range chosen {
		chosen[i] = false
	}
	marginal := func(pl int) float64 {
		cost := p.Cost(pl)
		// Walk the savings incident to pl through the index adjacency
		// directly — same order as SavingsOf, without materialising the
		// slice.
		for _, si := range p.adj[pl] {
			sv := p.savings[si]
			other := sv.P1
			if other == pl {
				other = sv.P2
			}
			if chosen[other] {
				cost -= sv.Value
			}
		}
		return cost
	}
	pick := func(q int, candidates []int) {
		best, bestCost := Unassigned, 0.0
		for _, pl := range candidates {
			c := marginal(pl)
			if best == Unassigned || c < bestCost {
				best, bestCost = pl, c
			}
		}
		into.Selected[q] = best
		chosen[best] = true
	}
	for q := 0; q < p.NumQueries(); q++ {
		plans := p.Plans(q)
		// Single-selected queries (the common, valid case) shortcut the
		// marginal computation without building a candidate list; the
		// multi-selected repair path scans the query's plan range in place.
		first, count := Unassigned, 0
		for _, pl := range plans {
			if pl < len(selected) && selected[pl] {
				if count == 0 {
					first = pl
				}
				count++
			}
		}
		switch count {
		case 1:
			into.Selected[q] = first
			chosen[first] = true
		case 0:
			pick(q, plans)
		default:
			cand := make([]int, 0, count)
			for _, pl := range plans {
				if pl < len(selected) && selected[pl] {
					cand = append(cand, pl)
				}
			}
			pick(q, cand)
		}
	}
}
