package mqo

import (
	"fmt"
	"sort"
)

// Delta describes an incremental edit of a Problem between solves of a
// recurring workload: cost updates, saving re-valuations, query removals
// and query additions. Apply produces the edited problem together with the
// index maps relating old and new numbering — the contract through which
// core.Session.ApplyDelta and the cross-solve cache migrate partitionings,
// skeletons and incumbents instead of recomputing them.
type Delta struct {
	// SetCosts maps global plan index (pre-delta numbering) to a new
	// execution cost. Entries for plans of removed queries are ignored —
	// the removal wins.
	SetCosts map[int]float64
	// SetSavings re-values existing savings. Each entry's (P1, P2) pair
	// (any order, pre-delta numbering) must name a saving the problem
	// already has; re-wiring savings is a structural change expressed by
	// removing and re-adding queries. Entries with a removed endpoint are
	// ignored.
	SetSavings []Saving
	// RemoveQueries lists pre-delta query indices to drop, with their
	// plans and every incident saving. Duplicates are rejected.
	RemoveQueries []int
	// AddQueries appends new queries after the surviving ones, in order.
	AddQueries []AddedQuery
}

// AddedQuery is one query joining the problem through a Delta.
type AddedQuery struct {
	// PlanCosts lists the new query's plan costs (all positive, as in
	// NewProblem).
	PlanCosts []float64
	// Savings connect the new query to the pre-delta problem: P1 is a
	// LOCAL plan index (0..len(PlanCosts)-1) of this query, P2 a global
	// plan index of the pre-delta problem. P2 plans of removed queries
	// are rejected. Savings between two queries added by the same delta
	// are not expressible; add them with a follow-up delta.
	Savings []Saving
}

// DeltaMap relates pre- and post-delta numbering.
type DeltaMap struct {
	// QueryMap[oldQ] is the old query's new index, or -1 when removed.
	QueryMap []int
	// PlanMap[oldPl] is the old plan's new global index, or -1 when its
	// query was removed.
	PlanMap []int
	// AddedQueries lists the new query indices of Delta.AddQueries, in
	// order.
	AddedQueries []int
	// StructureChanged reports whether the edit touched the problem shape
	// (any removal or addition) rather than weights only.
	StructureChanged bool
}

// Apply builds the post-delta problem. p is immutable and untouched;
// surviving queries keep their relative order, added queries append after
// them. The returned problem passes the same validation as NewProblem.
func (d Delta) Apply(p *Problem) (*Problem, *DeltaMap, error) {
	removed := make([]bool, p.NumQueries())
	for _, q := range d.RemoveQueries {
		if q < 0 || q >= p.NumQueries() {
			return nil, nil, fmt.Errorf("mqo: delta removes query %d out of range [0,%d)", q, p.NumQueries())
		}
		if removed[q] {
			return nil, nil, fmt.Errorf("mqo: delta removes query %d twice", q)
		}
		removed[q] = true
	}
	if len(d.RemoveQueries) == p.NumQueries() && len(d.AddQueries) == 0 {
		return nil, nil, fmt.Errorf("mqo: delta removes every query")
	}
	for pl := range d.SetCosts {
		if pl < 0 || pl >= p.NumPlans() {
			return nil, nil, fmt.Errorf("mqo: delta sets cost of plan %d out of range [0,%d)", pl, p.NumPlans())
		}
	}

	dm := &DeltaMap{
		QueryMap:         make([]int, p.NumQueries()),
		PlanMap:          make([]int, p.NumPlans()),
		StructureChanged: len(d.RemoveQueries) > 0 || len(d.AddQueries) > 0,
	}
	var planCosts [][]float64
	nextQ, nextPl := 0, 0
	for q := 0; q < p.NumQueries(); q++ {
		if removed[q] {
			dm.QueryMap[q] = -1
			for _, pl := range p.Plans(q) {
				dm.PlanMap[pl] = -1
			}
			continue
		}
		dm.QueryMap[q] = nextQ
		nextQ++
		costs := make([]float64, 0, len(p.Plans(q)))
		for _, pl := range p.Plans(q) {
			c := p.Cost(pl)
			if nc, ok := d.SetCosts[pl]; ok {
				c = nc
			}
			costs = append(costs, c)
			dm.PlanMap[pl] = nextPl
			nextPl++
		}
		planCosts = append(planCosts, costs)
	}
	addedPlanBase := make([]int, len(d.AddQueries))
	for i, aq := range d.AddQueries {
		dm.AddedQueries = append(dm.AddedQueries, nextQ)
		nextQ++
		addedPlanBase[i] = nextPl
		nextPl += len(aq.PlanCosts)
		planCosts = append(planCosts, append([]float64(nil), aq.PlanCosts...))
	}

	// Re-valuations are checked against the pre-delta savings list, then
	// folded in while the surviving savings are renumbered.
	override := make(map[[2]int]float64, len(d.SetSavings))
	for _, s := range d.SetSavings {
		s = s.Canonical()
		if !p.hasSaving(s.P1, s.P2) {
			return nil, nil, fmt.Errorf("mqo: delta re-values missing saving (%d,%d)", s.P1, s.P2)
		}
		override[[2]int{s.P1, s.P2}] = s.Value
	}
	var savings []Saving
	for _, s := range p.Savings() {
		n1, n2 := dm.PlanMap[s.P1], dm.PlanMap[s.P2]
		if n1 < 0 || n2 < 0 {
			continue
		}
		v := s.Value
		if ov, ok := override[[2]int{s.P1, s.P2}]; ok {
			v = ov
		}
		savings = append(savings, Saving{P1: n1, P2: n2, Value: v})
	}
	for i, aq := range d.AddQueries {
		for _, s := range aq.Savings {
			if s.P1 < 0 || s.P1 >= len(aq.PlanCosts) {
				return nil, nil, fmt.Errorf("mqo: added query %d: saving local plan %d out of range [0,%d)", i, s.P1, len(aq.PlanCosts))
			}
			if s.P2 < 0 || s.P2 >= p.NumPlans() {
				return nil, nil, fmt.Errorf("mqo: added query %d: saving references plan %d out of range [0,%d)", i, s.P2, p.NumPlans())
			}
			other := dm.PlanMap[s.P2]
			if other < 0 {
				return nil, nil, fmt.Errorf("mqo: added query %d: saving references plan %d of removed query %d", i, s.P2, p.QueryOf(s.P2))
			}
			savings = append(savings, Saving{P1: addedPlanBase[i] + s.P1, P2: other, Value: s.Value})
		}
	}
	np, err := NewProblem(planCosts, savings)
	if err != nil {
		return nil, nil, fmt.Errorf("mqo: delta: %w", err)
	}
	np.Name = p.Name
	return np, dm, nil
}

// hasSaving reports whether the canonical pair (p1, p2), p1 < p2, names an
// existing saving (regardless of its value — zero-valued savings exist as
// structure).
func (p *Problem) hasSaving(p1, p2 int) bool {
	i := sort.Search(len(p.savings), func(i int) bool {
		s := p.savings[i]
		return s.P1 > p1 || (s.P1 == p1 && s.P2 >= p2)
	})
	return i < len(p.savings) && p.savings[i].P1 == p1 && p.savings[i].P2 == p2
}
