package mqo

// Graph is the MQO graph G = (V, E) of Sec. 3.1: one node per execution
// plan, one undirected weighted edge per cost saving. It is a thin view over
// a Problem used by partitioning and by structural statistics.
type Graph struct {
	p *Problem
}

// NewGraph returns the MQO graph view of p.
func NewGraph(p *Problem) *Graph { return &Graph{p: p} }

// NumNodes returns the number of plan nodes.
func (g *Graph) NumNodes() int { return g.p.NumPlans() }

// NumEdges returns the number of saving edges.
func (g *Graph) NumEdges() int { return g.p.NumSavings() }

// Degree returns the number of saving edges incident to plan node pl.
func (g *Graph) Degree(pl int) int { return len(g.p.adj[pl]) }

// EdgeWeight returns the saving value between two plan nodes, or 0.
func (g *Graph) EdgeWeight(p1, p2 int) float64 { return g.p.SavingBetween(p1, p2) }

// Density returns the cost-savings density of the instance: the fraction of
// realised savings over all possible savings, i.e. over all plan pairs
// belonging to different queries (paper footnote 4).
func (g *Graph) Density() float64 {
	possible := g.possiblePairs()
	if possible == 0 {
		return 0
	}
	return float64(g.p.NumSavings()) / float64(possible)
}

// possiblePairs counts plan pairs of different queries:
// C(|P|,2) − Σ_q C(|P_q|,2).
func (g *Graph) possiblePairs() int64 {
	n := int64(g.p.NumPlans())
	total := n * (n - 1) / 2
	for q := 0; q < g.p.NumQueries(); q++ {
		k := int64(len(g.p.Plans(q)))
		total -= k * (k - 1) / 2
	}
	return total
}

// QueryAdjacency returns, for every pair of queries sharing at least one
// saving, the accumulated saving value between their plans. The result maps
// the smaller query index to (larger query index -> accumulated weight); it
// is the edge set of the partitioning graph of Sec. 4.1.1.
func (g *Graph) QueryAdjacency() map[int]map[int]float64 {
	adj := make(map[int]map[int]float64)
	for _, s := range g.p.Savings() {
		q1, q2 := g.p.QueryOf(s.P1), g.p.QueryOf(s.P2)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		inner, ok := adj[q1]
		if !ok {
			inner = make(map[int]float64)
			adj[q1] = inner
		}
		inner[q2] += s.Value
	}
	return adj
}

// ConnectedQueryComponents returns the connected components of the
// query-level graph (queries connected when any of their plans share a
// saving), each as a sorted list of query indices. Components are a cheap
// structural proxy for the community structure the paper's generators
// control.
func (g *Graph) ConnectedQueryComponents() [][]int {
	n := g.p.NumQueries()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, s := range g.p.Savings() {
		union(g.p.QueryOf(s.P1), g.p.QueryOf(s.P2))
	}
	groups := make(map[int][]int)
	for q := 0; q < n; q++ {
		r := find(q)
		groups[r] = append(groups[r], q)
	}
	comps := make([][]int, 0, len(groups))
	for _, c := range groups {
		comps = append(comps, c)
	}
	// Deterministic order: by first member.
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if comps[j][0] < comps[i][0] {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	return comps
}
