package mqo

// PaperExample returns the running example of the paper (Fig. 2): four
// queries with two plans each, costs c1..c8 = 9,10,9,10,11,9,14,9 and ten
// savings. Plan indices are zero-based, so the paper's p1..p8 map to 0..7.
//
// Ground truth established in Examples 3.1–4.7:
//   - greedy selection (p1,p3,p6,p8) costs 34 once savings are counted;
//   - the optimal solution (p2,p4,p5,p7) costs 25;
//   - the partitioning graph has node weights 2,2,2,2 and edge weights
//     ω(q1,q2)=8, ω(q1,q4)=5, ω(q2,q3)=5, ω(q3,q4)=8;
//   - parallel processing of partitions {q1,q2},{q3,q4} yields cost 32;
//   - incremental processing with DSS recovers the optimum 25.
func PaperExample() *Problem {
	p, err := NewProblem(
		[][]float64{
			{9, 10}, // q1: p1, p2
			{9, 10}, // q2: p3, p4
			{11, 9}, // q3: p5, p6
			{14, 9}, // q4: p7, p8
		},
		[]Saving{
			{P1: 0, P2: 2, Value: 1}, // s(p1,p3)
			{P1: 0, P2: 3, Value: 1}, // s(p1,p4)
			{P1: 1, P2: 2, Value: 1}, // s(p2,p3)
			{P1: 1, P2: 3, Value: 5}, // s(p2,p4)
			{P1: 1, P2: 6, Value: 5}, // s(p2,p7)
			{P1: 3, P2: 4, Value: 5}, // s(p4,p5)
			{P1: 4, P2: 6, Value: 5}, // s(p5,p7)
			{P1: 4, P2: 7, Value: 1}, // s(p5,p8)
			{P1: 5, P2: 6, Value: 1}, // s(p6,p7)
			{P1: 5, P2: 7, Value: 1}, // s(p6,p8)
		},
	)
	if err != nil {
		panic("mqo: paper example must construct: " + err.Error())
	}
	p.Name = "paper-fig2"
	return p
}

// PaperExampleOptimal returns the optimal solution (p2,p4,p5,p7) of the
// paper example, with cost 25.
func PaperExampleOptimal(p *Problem) *Solution {
	s := NewSolution(p)
	s.Selected = []int{1, 3, 4, 6}
	return s
}
