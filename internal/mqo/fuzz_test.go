package mqo

import (
	"bytes"
	"testing"
)

// FuzzReadProblem hardens the instance parser against malformed input: it
// must either reject the bytes or produce a problem that passes Validate
// and round-trips.
func FuzzReadProblem(f *testing.F) {
	var seedBuf bytes.Buffer
	if err := WriteProblem(&seedBuf, PaperExample()); err != nil {
		f.Fatal(err)
	}
	f.Add(seedBuf.Bytes())
	f.Add([]byte(`{"planCosts":[[1,2]],"savings":[]}`))
	f.Add([]byte(`{"planCosts":[[1],[2]],"savings":[{"p1":0,"p2":1,"value":3}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"planCosts":[[-1]],"savings":[]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ReadProblem(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted problem fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			t.Fatalf("accepted problem does not serialise: %v", err)
		}
		q, err := ReadProblem(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if q.NumQueries() != p.NumQueries() || q.NumPlans() != p.NumPlans() || q.NumSavings() != p.NumSavings() {
			t.Fatal("round trip changed problem shape")
		}
	})
}
