package mqo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPaperExampleCosts(t *testing.T) {
	p := PaperExample()
	// Example 3.1: greedy picks (p1,p3,p6,p8); with savings counted the
	// total is 34.
	greedy := GreedySolution(p)
	wantSel := []int{0, 2, 5, 7}
	for q, pl := range greedy.Selected {
		if pl != wantSel[q] {
			t.Fatalf("greedy selected %v, want %v", greedy.Selected, wantSel)
		}
	}
	if got := greedy.Cost(p); got != 34 {
		t.Errorf("greedy cost = %v, want 34", got)
	}
	// Example 3.1: the optimum (p2,p4,p5,p7) costs 25.
	opt := PaperExampleOptimal(p)
	if got := opt.Cost(p); got != 25 {
		t.Errorf("optimal cost = %v, want 25", got)
	}
	// Example 4.6: the parallel-processing result (p2,p4,p6,p8) costs 32.
	par := &Solution{Selected: []int{1, 3, 5, 7}}
	if got := par.Cost(p); got != 32 {
		t.Errorf("parallel-merge cost = %v, want 32", got)
	}
}

func TestPartialSolutionCost(t *testing.T) {
	p := PaperExample()
	s := NewSolution(p)
	if got := s.Cost(p); got != 0 {
		t.Errorf("empty solution cost = %v, want 0", got)
	}
	s.Selected[0], s.Selected[1] = 1, 3 // (p2, p4): 10+10−5
	if got := s.Cost(p); got != 15 {
		t.Errorf("partial cost = %v, want 15", got)
	}
	if s.Complete() {
		t.Error("partial solution reported complete")
	}
	if got := s.NumAssigned(); got != 2 {
		t.Errorf("NumAssigned = %d, want 2", got)
	}
}

func TestMarginalCost(t *testing.T) {
	p := PaperExample()
	s := NewSolution(p)
	s.Selected[0], s.Selected[1] = 1, 3
	// Example 4.7: with p2 and p4 selected, p7's marginal cost is
	// 14 − s(p2,p7) = 9, p5's is 11 − s(p4,p5) = 6.
	if got := s.MarginalCost(p, 6); got != 9 {
		t.Errorf("MarginalCost(p7) = %v, want 9", got)
	}
	if got := s.MarginalCost(p, 4); got != 6 {
		t.Errorf("MarginalCost(p5) = %v, want 6", got)
	}
}

func TestMergeConflicts(t *testing.T) {
	p := PaperExample()
	a, b := NewSolution(p), NewSolution(p)
	a.Selected[0] = 0
	b.Selected[0] = 1
	if err := a.Merge(b); err == nil {
		t.Error("Merge accepted conflicting assignment")
	}
	c := NewSolution(p)
	c.Selected[1] = 3
	if err := a.Merge(c); err != nil {
		t.Errorf("Merge of disjoint assignments failed: %v", err)
	}
	if a.Selected[0] != 0 || a.Selected[1] != 3 {
		t.Errorf("merged selection = %v", a.Selected)
	}
}

func TestValidateSolution(t *testing.T) {
	p := PaperExample()
	s := NewSolution(p)
	s.Selected[0] = 3 // plan of q2 assigned to q1
	if err := s.Validate(p); err == nil {
		t.Error("Validate accepted plan of wrong query")
	}
	s.Selected[0] = 99
	if err := s.Validate(p); err == nil {
		t.Error("Validate accepted out-of-range plan")
	}
}

func TestRepair(t *testing.T) {
	p := PaperExample()
	// No plan selected anywhere: repair must produce a valid complete
	// solution.
	s := Repair(p, make([]bool, p.NumPlans()))
	if err := s.Validate(p); err != nil {
		t.Fatalf("repair of empty selection invalid: %v", err)
	}
	if !s.Complete() {
		t.Fatal("repair of empty selection incomplete")
	}
	// Multiple plans for q1 selected: exactly one must survive.
	sel := make([]bool, p.NumPlans())
	sel[0], sel[1] = true, true // both plans of q1
	sel[3], sel[4], sel[6] = true, true, true
	s = Repair(p, sel)
	if err := s.Validate(p); err != nil {
		t.Fatalf("repair invalid: %v", err)
	}
	if !s.Complete() {
		t.Fatal("repair incomplete")
	}
	// Queries with a unique selected plan keep it.
	if s.Selected[1] != 3 || s.Selected[2] != 4 || s.Selected[3] != 6 {
		t.Errorf("repair changed unique selections: %v", s.Selected)
	}
}

func TestRepairAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, mask uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 5, 3, 0.3)
		sel := make([]bool, p.NumPlans())
		for i := range sel {
			sel[i] = mask&(1<<(i%16)) != 0 && rng.Intn(2) == 0
		}
		s := Repair(p, sel)
		return s.Validate(p) == nil && s.Complete()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCostMatchesBruteForceProperty(t *testing.T) {
	// Property: Cost equals the direct definition Σc − Σ realised savings.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 5, 3, 0.4)
		s := NewSolution(p)
		for q := 0; q < p.NumQueries(); q++ {
			plans := p.Plans(q)
			s.Selected[q] = plans[rng.Intn(len(plans))]
		}
		var want float64
		for _, pl := range s.Selected {
			want += p.Cost(pl)
		}
		for _, pl1 := range s.Selected {
			for _, pl2 := range s.Selected {
				if pl1 < pl2 {
					want -= p.SavingBetween(pl1, pl2)
				}
			}
		}
		got := s.Cost(p)
		diff := got - want
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGreedySolutionPicksCheapestPlans(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 6, 4, 0.2)
		g := GreedySolution(p)
		for q := 0; q < p.NumQueries(); q++ {
			for _, pl := range p.Plans(q) {
				if p.Cost(pl) < p.Cost(g.Selected[q]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
