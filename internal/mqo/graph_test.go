package mqo

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestQueryAdjacencyMatchesPaper(t *testing.T) {
	p := PaperExample()
	g := NewGraph(p)
	adj := g.QueryAdjacency()
	// Example 4.1: ω(q1,q2)=8, ω(q1,q4)=5, ω(q2,q3)=5, ω(q3,q4)=8; no
	// edges (q1,q3) or (q2,q4).
	want := map[int]map[int]float64{
		0: {1: 8, 3: 5},
		1: {2: 5},
		2: {3: 8},
	}
	if !reflect.DeepEqual(adj, want) {
		t.Errorf("QueryAdjacency = %v, want %v", adj, want)
	}
}

func TestGraphDensity(t *testing.T) {
	p := PaperExample()
	g := NewGraph(p)
	// Possible pairs: C(8,2) − 4·C(2,2)... plans per query 2 → C(2,2)=1
	// per query: 28 − 4 = 24. Realised savings: 10.
	want := 10.0 / 24.0
	if got := g.Density(); got != want {
		t.Errorf("Density = %v, want %v", got, want)
	}
}

func TestGraphDegreeAndEdgeWeight(t *testing.T) {
	p := PaperExample()
	g := NewGraph(p)
	if got := g.NumNodes(); got != 8 {
		t.Errorf("NumNodes = %d, want 8", got)
	}
	if got := g.NumEdges(); got != 10 {
		t.Errorf("NumEdges = %d, want 10", got)
	}
	if got := g.Degree(1); got != 3 { // p2: s23, s24, s27
		t.Errorf("Degree(p2) = %d, want 3", got)
	}
	if got := g.EdgeWeight(1, 6); got != 5 {
		t.Errorf("EdgeWeight(p2,p7) = %v, want 5", got)
	}
}

func TestConnectedQueryComponents(t *testing.T) {
	// Two disconnected query groups.
	p, err := NewProblem(
		[][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}},
		[]Saving{
			{P1: 0, P2: 2, Value: 1}, // q1–q2
			{P1: 4, P2: 6, Value: 1}, // q3–q4
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	comps := NewGraph(p).ConnectedQueryComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want two", comps)
	}
	if !reflect.DeepEqual(comps[0], []int{0, 1}) || !reflect.DeepEqual(comps[1], []int{2, 3}) {
		t.Errorf("components = %v, want [[0 1] [2 3]]", comps)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 5, 3, 0.3)
		p.Name = "roundtrip"
		var buf bytes.Buffer
		if err := WriteProblem(&buf, p); err != nil {
			return false
		}
		q, err := ReadProblem(&buf)
		if err != nil {
			return false
		}
		if q.Name != p.Name || q.NumQueries() != p.NumQueries() || q.NumPlans() != p.NumPlans() {
			return false
		}
		for pl := 0; pl < p.NumPlans(); pl++ {
			if q.Cost(pl) != p.Cost(pl) {
				return false
			}
		}
		return reflect.DeepEqual(q.Savings(), p.Savings())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadProblemRejectsGarbage(t *testing.T) {
	if _, err := ReadProblem(bytes.NewBufferString("{")); err == nil {
		t.Error("ReadProblem accepted truncated JSON")
	}
	if _, err := ReadProblem(bytes.NewBufferString(`{"planCosts": [[-1]], "savings": []}`)); err == nil {
		t.Error("ReadProblem accepted negative cost")
	}
}
