package mqo

import (
	"encoding/json"
	"fmt"
	"io"
)

// problemJSON is the on-disk representation of a Problem. Plan costs are
// grouped by query; savings use global plan indices.
type problemJSON struct {
	Name      string       `json:"name,omitempty"`
	PlanCosts [][]float64  `json:"planCosts"`
	Savings   []savingJSON `json:"savings"`
}

type savingJSON struct {
	P1    int     `json:"p1"`
	P2    int     `json:"p2"`
	Value float64 `json:"value"`
}

// MarshalJSON encodes p in the instance interchange format used by the
// cmd/mqogen and cmd/mqosolve tools.
func (p *Problem) MarshalJSON() ([]byte, error) {
	pj := problemJSON{Name: p.Name, Savings: []savingJSON{}}
	for q := 0; q < p.NumQueries(); q++ {
		costs := make([]float64, 0, len(p.Plans(q)))
		for _, pl := range p.Plans(q) {
			costs = append(costs, p.Cost(pl))
		}
		pj.PlanCosts = append(pj.PlanCosts, costs)
	}
	for _, s := range p.Savings() {
		pj.Savings = append(pj.Savings, savingJSON{P1: s.P1, P2: s.P2, Value: s.Value})
	}
	return json.Marshal(pj)
}

// UnmarshalJSON decodes an instance written by MarshalJSON, validating it.
func (p *Problem) UnmarshalJSON(data []byte) error {
	var pj problemJSON
	if err := json.Unmarshal(data, &pj); err != nil {
		return fmt.Errorf("mqo: decoding problem: %w", err)
	}
	savings := make([]Saving, len(pj.Savings))
	for i, s := range pj.Savings {
		savings[i] = Saving{P1: s.P1, P2: s.P2, Value: s.Value}
	}
	np, err := NewProblem(pj.PlanCosts, savings)
	if err != nil {
		return err
	}
	np.Name = pj.Name
	*p = *np
	return nil
}

// WriteProblem writes p as JSON to w.
func WriteProblem(w io.Writer, p *Problem) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p)
}

// ReadProblem reads a JSON-encoded problem from r.
func ReadProblem(r io.Reader) (*Problem, error) {
	var p Problem
	dec := json.NewDecoder(r)
	if err := dec.Decode(&p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}
