// Package mqo defines the multiple query optimisation (MQO) problem model
// used throughout this repository. It follows the formal model of Trummer
// and Koch (VLDB'16), which the incremental annealing paper adopts: a batch
// of queries, a set of mutually exclusive execution plans per query, a
// positive execution cost per plan, and non-negative cost savings between
// pairs of plans belonging to different queries. A solution selects exactly
// one plan per query; its cost is the sum of selected plan costs minus the
// savings realised between selected pairs.
package mqo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Saving is a cost-sharing opportunity between two execution plans that
// belong to different queries. Selecting both plans reduces the total
// execution cost by Value. Plans are identified by their global plan index;
// a Saving is stored in canonical order with P1 < P2.
type Saving struct {
	P1, P2 int
	Value  float64
}

// Canonical returns s with its plan indices ordered so that P1 < P2.
func (s Saving) Canonical() Saving {
	if s.P1 > s.P2 {
		s.P1, s.P2 = s.P2, s.P1
	}
	return s
}

// Problem is an immutable MQO problem instance.
//
// Plans are numbered globally from 0 to NumPlans()-1 and grouped by query;
// queries are numbered from 0 to NumQueries()-1. The zero value is an empty
// problem; use NewProblem or a Builder to construct instances.
type Problem struct {
	// plansOfQuery[q] lists the global indices of the plans of query q.
	plansOfQuery [][]int
	// queryOfPlan[p] is the query that plan p belongs to.
	queryOfPlan []int
	// cost[p] is the execution cost of plan p.
	cost []float64
	// savings holds all cost savings in canonical order (P1 < P2), sorted
	// lexicographically. No duplicates.
	savings []Saving
	// adj[p] lists, for each plan p, the savings incident to p. Entries
	// reference the savings slice.
	adj [][]int
	// Name is an optional human-readable instance label (e.g. the generator
	// parameters that produced it).
	Name string
}

// NewProblem constructs a Problem from per-query plan costs and a list of
// savings between plans of different queries.
//
// planCosts[q] holds the execution costs of the plans of query q; the global
// plan numbering assigns consecutive indices query by query, i.e. query 0
// owns plans 0..len(planCosts[0])-1 and so on. All costs must be positive
// and all savings non-negative, referencing valid plans of distinct queries.
// Duplicate savings for the same plan pair are rejected.
func NewProblem(planCosts [][]float64, savings []Saving) (*Problem, error) {
	p := &Problem{}
	total := 0
	for q, costs := range planCosts {
		if len(costs) == 0 {
			return nil, fmt.Errorf("mqo: query %d has no plans", q)
		}
		ids := make([]int, len(costs))
		for i, c := range costs {
			if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("mqo: query %d plan %d has invalid cost %v (must be positive and finite)", q, i, c)
			}
			ids[i] = total
			total++
		}
		p.plansOfQuery = append(p.plansOfQuery, ids)
		p.cost = append(p.cost, costs...)
		for range costs {
			p.queryOfPlan = append(p.queryOfPlan, q)
		}
	}
	if err := p.setSavings(savings); err != nil {
		return nil, err
	}
	return p, nil
}

// setSavings canonicalises, validates, sorts and indexes the savings list.
func (p *Problem) setSavings(savings []Saving) error {
	cs := make([]Saving, len(savings))
	for i, s := range savings {
		s = s.Canonical()
		if s.P1 < 0 || s.P2 >= len(p.cost) {
			return fmt.Errorf("mqo: saving references plan out of range: (%d,%d)", s.P1, s.P2)
		}
		if s.P1 == s.P2 {
			return fmt.Errorf("mqo: saving references a single plan %d twice", s.P1)
		}
		if p.queryOfPlan[s.P1] == p.queryOfPlan[s.P2] {
			return fmt.Errorf("mqo: saving between plans %d and %d of the same query %d", s.P1, s.P2, p.queryOfPlan[s.P1])
		}
		if s.Value < 0 || math.IsNaN(s.Value) || math.IsInf(s.Value, 0) {
			return fmt.Errorf("mqo: saving (%d,%d) has invalid value %v", s.P1, s.P2, s.Value)
		}
		cs[i] = s
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].P1 != cs[j].P1 {
			return cs[i].P1 < cs[j].P1
		}
		return cs[i].P2 < cs[j].P2
	})
	for i := 1; i < len(cs); i++ {
		if cs[i].P1 == cs[i-1].P1 && cs[i].P2 == cs[i-1].P2 {
			return fmt.Errorf("mqo: duplicate saving for plan pair (%d,%d)", cs[i].P1, cs[i].P2)
		}
	}
	p.savings = cs
	p.adj = make([][]int, len(p.cost))
	for i, s := range cs {
		p.adj[s.P1] = append(p.adj[s.P1], i)
		p.adj[s.P2] = append(p.adj[s.P2], i)
	}
	return nil
}

// NumQueries returns |Q|, the number of queries in the batch.
func (p *Problem) NumQueries() int { return len(p.plansOfQuery) }

// NumPlans returns |P|, the total number of execution plans.
func (p *Problem) NumPlans() int { return len(p.cost) }

// NumSavings returns |S|, the number of cost savings.
func (p *Problem) NumSavings() int { return len(p.savings) }

// Plans returns the global plan indices of query q. The returned slice is
// owned by the Problem and must not be modified.
func (p *Problem) Plans(q int) []int { return p.plansOfQuery[q] }

// QueryOf returns the query that plan belongs to.
func (p *Problem) QueryOf(plan int) int { return p.queryOfPlan[plan] }

// Cost returns the execution cost of plan.
func (p *Problem) Cost(plan int) float64 { return p.cost[plan] }

// Savings returns all cost savings in canonical sorted order. The returned
// slice is owned by the Problem and must not be modified.
func (p *Problem) Savings() []Saving { return p.savings }

// SavingsOf returns the savings incident to plan. The returned slice is
// owned by the Problem and must not be modified.
func (p *Problem) SavingsOf(plan int) []Saving {
	idx := p.adj[plan]
	out := make([]Saving, len(idx))
	for i, si := range idx {
		out[i] = p.savings[si]
	}
	return out
}

// SavingBetween reports the saving value between two plans, or 0 if none is
// defined. Plan order does not matter.
func (p *Problem) SavingBetween(p1, p2 int) float64 {
	if p1 > p2 {
		p1, p2 = p2, p1
	}
	// Binary search over the canonically sorted savings list.
	lo, hi := 0, len(p.savings)
	for lo < hi {
		mid := (lo + hi) / 2
		s := p.savings[mid]
		if s.P1 < p1 || (s.P1 == p1 && s.P2 < p2) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.savings) && p.savings[lo].P1 == p1 && p.savings[lo].P2 == p2 {
		return p.savings[lo].Value
	}
	return 0
}

// TotalPlanCost returns the sum of all plan costs (an upper bound on any
// solution cost).
func (p *Problem) TotalPlanCost() float64 {
	var t float64
	for _, c := range p.cost {
		t += c
	}
	return t
}

// MaxPlanCost returns the largest single plan cost, or 0 for an empty
// problem.
func (p *Problem) MaxPlanCost() float64 {
	var m float64
	for _, c := range p.cost {
		if c > m {
			m = c
		}
	}
	return m
}

// MaxIncidentSavings returns the largest accumulated saving incident to any
// single plan. It bounds the benefit of selecting any one extra plan and is
// used to derive sufficient QUBO penalty weights.
func (p *Problem) MaxIncidentSavings() float64 {
	var m float64
	for plan := range p.adj {
		var t float64
		for _, si := range p.adj[plan] {
			t += p.savings[si].Value
		}
		if t > m {
			m = t
		}
	}
	return m
}

// SolutionSpaceSize returns log10 of the number of valid solutions,
// i.e. log10(Π_q |P_q|). The logarithm avoids overflow for the paper's
// large-scale instances (e.g. 40^1000 solutions).
func (p *Problem) SolutionSpaceSize() float64 {
	var l float64
	for _, plans := range p.plansOfQuery {
		l += math.Log10(float64(len(plans)))
	}
	return l
}

// ErrEmptyProblem is returned by operations that require at least one query.
var ErrEmptyProblem = errors.New("mqo: problem has no queries")

// Validate performs internal consistency checks. It is primarily useful
// after deserialisation of externally produced instances.
func (p *Problem) Validate() error {
	if p.NumQueries() == 0 {
		return ErrEmptyProblem
	}
	next := 0
	for q, plans := range p.plansOfQuery {
		if len(plans) == 0 {
			return fmt.Errorf("mqo: query %d has no plans", q)
		}
		for _, pl := range plans {
			if pl != next {
				return fmt.Errorf("mqo: non-contiguous plan numbering at query %d (plan %d, want %d)", q, pl, next)
			}
			if p.queryOfPlan[pl] != q {
				return fmt.Errorf("mqo: plan %d maps to query %d, want %d", pl, p.queryOfPlan[pl], q)
			}
			next++
		}
	}
	if next != len(p.cost) {
		return fmt.Errorf("mqo: %d plans indexed but %d costs stored", next, len(p.cost))
	}
	for _, c := range p.cost {
		if c <= 0 {
			return fmt.Errorf("mqo: non-positive plan cost %v", c)
		}
	}
	for _, s := range p.savings {
		if s.P1 >= s.P2 {
			return fmt.Errorf("mqo: non-canonical saving (%d,%d)", s.P1, s.P2)
		}
		if p.queryOfPlan[s.P1] == p.queryOfPlan[s.P2] {
			return fmt.Errorf("mqo: intra-query saving (%d,%d)", s.P1, s.P2)
		}
		if s.Value < 0 {
			return fmt.Errorf("mqo: negative saving (%d,%d)=%v", s.P1, s.P2, s.Value)
		}
	}
	return nil
}
