package mqo

import (
	"testing"
)

// deltaBase builds the shared fixture: three queries with two plans each and
// a savings chain q0–q1 (plans 0,2) and q1–q2 (plans 3,4).
func deltaBase(t *testing.T) *Problem {
	t.Helper()
	p, err := NewProblem(
		[][]float64{{3, 5}, {2, 4}, {6, 1}},
		[]Saving{{P1: 0, P2: 2, Value: 1.5}, {P1: 3, P2: 4, Value: 2}},
	)
	if err != nil {
		t.Fatal(err)
	}
	p.Name = "delta-base"
	return p
}

func TestDeltaWeightOnly(t *testing.T) {
	p := deltaBase(t)
	d := Delta{
		SetCosts:   map[int]float64{1: 9, 4: 7.5},
		SetSavings: []Saving{{P1: 2, P2: 0, Value: 3.25}}, // reversed pair order is fine
	}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if dm.StructureChanged {
		t.Fatal("weight-only delta reported a structure change")
	}
	for q, want := range []int{0, 1, 2} {
		if dm.QueryMap[q] != want {
			t.Fatalf("query map = %v", dm.QueryMap)
		}
	}
	for pl, want := range []int{0, 1, 2, 3, 4, 5} {
		if dm.PlanMap[pl] != want {
			t.Fatalf("plan map = %v", dm.PlanMap)
		}
	}
	if np.Cost(1) != 9 || np.Cost(4) != 7.5 || np.Cost(0) != 3 {
		t.Fatalf("costs not applied: %v %v %v", np.Cost(1), np.Cost(4), np.Cost(0))
	}
	sv := np.Savings()
	if len(sv) != 2 || sv[0].Value != 3.25 || sv[1].Value != 2 {
		t.Fatalf("savings not applied: %v", sv)
	}
	// The source problem is immutable.
	if p.Cost(1) != 5 || p.Savings()[0].Value != 1.5 {
		t.Fatal("Apply mutated the source problem")
	}
	if np.Name != p.Name {
		t.Fatalf("name not carried: %q", np.Name)
	}
}

func TestDeltaRemoveQuery(t *testing.T) {
	p := deltaBase(t)
	np, dm, err := Delta{RemoveQueries: []int{1}}.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if !dm.StructureChanged {
		t.Fatal("removal did not report a structure change")
	}
	if np.NumQueries() != 2 || np.NumPlans() != 4 {
		t.Fatalf("post-removal shape: %d queries, %d plans", np.NumQueries(), np.NumPlans())
	}
	if dm.QueryMap[0] != 0 || dm.QueryMap[1] != -1 || dm.QueryMap[2] != 1 {
		t.Fatalf("query map = %v", dm.QueryMap)
	}
	want := []int{0, 1, -1, -1, 2, 3}
	for pl, w := range want {
		if dm.PlanMap[pl] != w {
			t.Fatalf("plan map = %v, want %v", dm.PlanMap, want)
		}
	}
	// Both savings had an endpoint in query 1: all gone.
	if np.NumSavings() != 0 {
		t.Fatalf("incident savings survived: %v", np.Savings())
	}
}

func TestDeltaAddQuery(t *testing.T) {
	p := deltaBase(t)
	d := Delta{AddQueries: []AddedQuery{{
		PlanCosts: []float64{7, 8},
		Savings:   []Saving{{P1: 1, P2: 5, Value: 4}}, // local plan 1 ↔ global plan 5
	}}}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if np.NumQueries() != 4 || np.NumPlans() != 8 {
		t.Fatalf("post-add shape: %d queries, %d plans", np.NumQueries(), np.NumPlans())
	}
	if len(dm.AddedQueries) != 1 || dm.AddedQueries[0] != 3 {
		t.Fatalf("added queries = %v", dm.AddedQueries)
	}
	if np.Cost(6) != 7 || np.Cost(7) != 8 {
		t.Fatalf("added plan costs: %v %v", np.Cost(6), np.Cost(7))
	}
	found := false
	for _, s := range np.Savings() {
		if s.P1 == 5 && s.P2 == 7 && s.Value == 4 {
			found = true
		}
	}
	if !found {
		t.Fatalf("added saving missing: %v", np.Savings())
	}
}

func TestDeltaRemoveAndAddCombined(t *testing.T) {
	p := deltaBase(t)
	d := Delta{
		SetCosts:      map[int]float64{0: 11, 2: 12}, // plan 2 belongs to removed query 1: ignored
		RemoveQueries: []int{1},
		AddQueries: []AddedQuery{{
			PlanCosts: []float64{9},
			Savings:   []Saving{{P1: 0, P2: 0, Value: 6}},
		}},
	}
	np, dm, err := d.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if np.NumQueries() != 3 || np.NumPlans() != 5 {
		t.Fatalf("shape: %d queries, %d plans", np.NumQueries(), np.NumPlans())
	}
	if np.Cost(0) != 11 {
		t.Fatalf("surviving cost update lost: %v", np.Cost(0))
	}
	// Added query index 2, its plan is global 4; saving to old plan 0 = new 0.
	sv := np.Savings()
	if len(sv) != 1 || sv[0].P1 != 0 || sv[0].P2 != 4 || sv[0].Value != 6 {
		t.Fatalf("savings = %v", sv)
	}
	if dm.QueryMap[1] != -1 || dm.AddedQueries[0] != 2 {
		t.Fatalf("maps: %v %v", dm.QueryMap, dm.AddedQueries)
	}
}

func TestDeltaErrors(t *testing.T) {
	p := deltaBase(t)
	cases := []struct {
		name string
		d    Delta
	}{
		{"remove out of range", Delta{RemoveQueries: []int{3}}},
		{"remove negative", Delta{RemoveQueries: []int{-1}}},
		{"remove twice", Delta{RemoveQueries: []int{1, 1}}},
		{"remove everything", Delta{RemoveQueries: []int{0, 1, 2}}},
		{"cost out of range", Delta{SetCosts: map[int]float64{6: 1}}},
		{"revalue missing saving", Delta{SetSavings: []Saving{{P1: 0, P2: 4, Value: 1}}}},
		{"added saving local out of range", Delta{AddQueries: []AddedQuery{{PlanCosts: []float64{1}, Savings: []Saving{{P1: 1, P2: 0, Value: 1}}}}}},
		{"added saving global out of range", Delta{AddQueries: []AddedQuery{{PlanCosts: []float64{1}, Savings: []Saving{{P1: 0, P2: 9, Value: 1}}}}}},
		{"added saving to removed query", Delta{RemoveQueries: []int{1}, AddQueries: []AddedQuery{{PlanCosts: []float64{1}, Savings: []Saving{{P1: 0, P2: 2, Value: 1}}}}}},
		{"added query invalid cost", Delta{AddQueries: []AddedQuery{{PlanCosts: []float64{-1}}}}},
	}
	for _, tc := range cases {
		if _, _, err := tc.d.Apply(p); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Removing everything while adding is legal.
	if _, _, err := (Delta{RemoveQueries: []int{0, 1, 2}, AddQueries: []AddedQuery{{PlanCosts: []float64{1}}}}).Apply(p); err != nil {
		t.Errorf("remove-all-with-add rejected: %v", err)
	}
}

func TestDeltaEmptyIsIdentity(t *testing.T) {
	p := deltaBase(t)
	np, dm, err := Delta{}.Apply(p)
	if err != nil {
		t.Fatal(err)
	}
	if dm.StructureChanged {
		t.Fatal("empty delta reported a structure change")
	}
	if np.NumQueries() != p.NumQueries() || np.NumPlans() != p.NumPlans() || np.NumSavings() != p.NumSavings() {
		t.Fatal("empty delta changed the shape")
	}
	for pl := 0; pl < p.NumPlans(); pl++ {
		if np.Cost(pl) != p.Cost(pl) {
			t.Fatalf("plan %d cost changed", pl)
		}
	}
}
