package mqo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestExtractPaperPartitions(t *testing.T) {
	p := PaperExample()
	// Example 4.4 partitions: part1 = (q1,q2), part2 = (q3,q4).
	sub1, err := Extract(p, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := sub1.Local.NumQueries(); got != 2 {
		t.Fatalf("sub1 queries = %d, want 2", got)
	}
	if got := sub1.Local.NumPlans(); got != 4 {
		t.Fatalf("sub1 plans = %d, want 4", got)
	}
	// Internal savings of part1: s13, s14, s23, s24 → 4 savings.
	if got := sub1.Local.NumSavings(); got != 4 {
		t.Errorf("sub1 savings = %d, want 4", got)
	}
	// Discarded: s(p2,p7) and s(p4,p5) → magnitude 10.
	if got := sub1.DiscardedMagnitude(); got != 10 {
		t.Errorf("sub1 discarded = %v, want 10", got)
	}
	sub2, err := Extract(p, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Internal savings of part2: s57, s58, s67, s68 → 4 savings, discarded 10.
	if got := sub2.Local.NumSavings(); got != 4 {
		t.Errorf("sub2 savings = %d, want 4", got)
	}
	if got := sub2.DiscardedMagnitude(); got != 10 {
		t.Errorf("sub2 discarded = %v, want 10", got)
	}
}

func TestExtractRejectsBadQuerySets(t *testing.T) {
	p := PaperExample()
	if _, err := Extract(p, nil); err == nil {
		t.Error("Extract accepted empty query set")
	}
	if _, err := Extract(p, []int{0, 0}); err == nil {
		t.Error("Extract accepted duplicate query")
	}
	if _, err := Extract(p, []int{0, 9}); err == nil {
		t.Error("Extract accepted out-of-range query")
	}
}

func TestSubProblemToGlobal(t *testing.T) {
	p := PaperExample()
	sub, err := Extract(p, []int{1, 3}) // q2 and q4
	if err != nil {
		t.Fatal(err)
	}
	local := NewSolution(sub.Local)
	local.Selected[0] = 1 // p4 locally (plans of q2 are local 0,1 = global 2,3)
	local.Selected[1] = 2 // p7 locally (plans of q4 are local 2,3 = global 6,7)
	global, err := sub.ToGlobal(p, local)
	if err != nil {
		t.Fatal(err)
	}
	if global.Selected[1] != 3 || global.Selected[3] != 6 {
		t.Errorf("global selection = %v, want q2→3, q4→6", global.Selected)
	}
	if global.Selected[0] != Unassigned || global.Selected[2] != Unassigned {
		t.Errorf("queries outside subset assigned: %v", global.Selected)
	}
}

func TestAdjustCostImplementsDSSExample(t *testing.T) {
	p := PaperExample()
	sub, err := Extract(p, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Example 4.7: reduce c7 by s(p2,p7)=5 → 9, c5 by s(p4,p5)=5 → 6.
	sub.AdjustCost(6, 5)
	sub.AdjustCost(4, 5)
	l5, _ := sub.LocalPlan(4)
	l7, _ := sub.LocalPlan(6)
	if got := sub.Local.Cost(l5); got != 6 {
		t.Errorf("adjusted c5 = %v, want 6", got)
	}
	if got := sub.Local.Cost(l7); got != 9 {
		t.Errorf("adjusted c7 = %v, want 9", got)
	}
	// Local optimum now is (p5,p7) at 6+9−5 = 10.
	best := &Solution{Selected: []int{l5, l7}}
	if got := best.Cost(sub.Local); got != 10 {
		t.Errorf("steered local optimum cost = %v, want 10", got)
	}
	// Adjusting a plan outside the sub-problem is a no-op.
	sub.AdjustCost(0, 100)
}

func TestExtractPartitionInvariantsProperty(t *testing.T) {
	// Property: internal + discarded savings of a partition cover every
	// parent saving exactly once (counting cross savings once per side).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, 3, 0.3)
		var qs1, qs2 []int
		for q := 0; q < p.NumQueries(); q++ {
			if rng.Intn(2) == 0 {
				qs1 = append(qs1, q)
			} else {
				qs2 = append(qs2, q)
			}
		}
		if len(qs1) == 0 || len(qs2) == 0 {
			return true
		}
		sub1, err := Extract(p, qs1)
		if err != nil {
			return false
		}
		sub2, err := Extract(p, qs2)
		if err != nil {
			return false
		}
		if len(sub1.Discarded) != len(sub2.Discarded) {
			return false
		}
		total := sub1.Local.NumSavings() + sub2.Local.NumSavings() + len(sub1.Discarded)
		return total == p.NumSavings()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSubProblemCostConsistencyProperty(t *testing.T) {
	// Property: a local solution's cost on the (unadjusted) local problem
	// equals the global cost of its translation, because internal savings
	// are preserved verbatim.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 8, 3, 0.3)
		qs := []int{1, 3, 4, 6}
		sub, err := Extract(p, qs)
		if err != nil {
			return false
		}
		local := NewSolution(sub.Local)
		for lq := 0; lq < sub.Local.NumQueries(); lq++ {
			plans := sub.Local.Plans(lq)
			local.Selected[lq] = plans[rng.Intn(len(plans))]
		}
		global, err := sub.ToGlobal(p, local)
		if err != nil {
			return false
		}
		diff := local.Cost(sub.Local) - global.Cost(p)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
