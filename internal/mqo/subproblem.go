package mqo

import (
	"fmt"
	"sort"
)

// SubProblem is a partial MQO problem over a subset of the queries of a
// parent problem, as produced by the partitioning phase (Sec. 4.1).
//
// The Local problem re-numbers the subset's queries and plans contiguously
// from zero; Queries and PlanGlobal map back to the parent. Savings between
// two plans inside the subset become savings of the Local problem; savings
// with exactly one endpoint inside the subset are *discarded* by the
// partitioning and recorded in Discarded so that the dynamic search steering
// phase (Algorithm 3) can re-apply them.
type SubProblem struct {
	// Local is the self-contained partial problem. Its plan costs are
	// mutable via AdjustCost to support DSS.
	Local *Problem
	// Queries maps local query index -> parent query index.
	Queries []int
	// PlanGlobal maps local plan index -> parent plan index.
	PlanGlobal []int
	// planLocal maps parent plan index -> local plan index (only for plans
	// inside the subset).
	planLocal map[int]int
	// Discarded lists parent-problem savings with exactly one endpoint in
	// this subset, in canonical parent numbering.
	Discarded []Saving
}

// Extract builds the SubProblem of parent over the given parent query
// indices. The query list must be non-empty, sorted or unsorted, and free of
// duplicates and out-of-range indices.
func Extract(parent *Problem, queries []int) (*SubProblem, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("mqo: cannot extract sub-problem over zero queries")
	}
	qs := make([]int, len(queries))
	copy(qs, queries)
	sort.Ints(qs)
	for i, q := range qs {
		if q < 0 || q >= parent.NumQueries() {
			return nil, fmt.Errorf("mqo: sub-problem query %d out of range", q)
		}
		if i > 0 && qs[i-1] == q {
			return nil, fmt.Errorf("mqo: duplicate query %d in sub-problem", q)
		}
	}
	sub := &SubProblem{
		Queries:   qs,
		planLocal: make(map[int]int),
	}
	planCosts := make([][]float64, len(qs))
	for lq, q := range qs {
		plans := parent.Plans(q)
		costs := make([]float64, len(plans))
		for i, pl := range plans {
			costs[i] = parent.Cost(pl)
			sub.planLocal[pl] = len(sub.PlanGlobal)
			sub.PlanGlobal = append(sub.PlanGlobal, pl)
		}
		planCosts[lq] = costs
	}
	var local []Saving
	for _, sv := range parent.Savings() {
		l1, in1 := sub.planLocal[sv.P1]
		l2, in2 := sub.planLocal[sv.P2]
		switch {
		case in1 && in2:
			local = append(local, Saving{P1: l1, P2: l2, Value: sv.Value})
		case in1 != in2:
			sub.Discarded = append(sub.Discarded, sv)
		}
	}
	var err error
	sub.Local, err = NewProblem(planCosts, local)
	if err != nil {
		return nil, fmt.Errorf("mqo: extracting sub-problem: %w", err)
	}
	sub.Local.Name = fmt.Sprintf("%s[sub %d queries]", parent.Name, len(qs))
	return sub, nil
}

// LocalPlan returns the local index of a parent plan, and whether the plan
// is part of this sub-problem.
func (sp *SubProblem) LocalPlan(parentPlan int) (int, bool) {
	l, ok := sp.planLocal[parentPlan]
	return l, ok
}

// AdjustCost reduces the cost of the local plan corresponding to parentPlan
// by delta. It implements the plan-cost update of Algorithm 3
// (plan.cost ← plan.cost − s.val); adjusted costs may become non-positive,
// which downstream QUBO encodings and solvers handle.
func (sp *SubProblem) AdjustCost(parentPlan int, delta float64) {
	l, ok := sp.planLocal[parentPlan]
	if !ok {
		return
	}
	sp.Local.cost[l] -= delta
}

// ToGlobal translates a solution of the Local problem into a partial
// solution of the parent problem.
func (sp *SubProblem) ToGlobal(parent *Problem, local *Solution) (*Solution, error) {
	if err := local.Validate(sp.Local); err != nil {
		return nil, err
	}
	g := NewSolution(parent)
	for lq, pl := range local.Selected {
		if pl == Unassigned {
			continue
		}
		g.Selected[sp.Queries[lq]] = sp.PlanGlobal[pl]
	}
	return g, nil
}

// PlanOwners maps every plan of parent to the index of the sub-problem
// owning it, or -1 for plans outside every sub. Sub-problems produced by the
// partitioning phase partition the query set, so each plan has at most one
// owner; the map is the lookup the DSS dependency DAG is built from (a
// discarded saving couples exactly the two sub-problems owning its
// endpoints).
func PlanOwners(parent *Problem, subs []*SubProblem) []int {
	owner := make([]int, parent.NumPlans())
	for i := range owner {
		owner[i] = -1
	}
	for si, sub := range subs {
		for _, pl := range sub.PlanGlobal {
			owner[pl] = si
		}
	}
	return owner
}

// DiscardedMagnitude returns the accumulated value of the savings this
// sub-problem lost to the partitioning — the information DSS re-applies.
func (sp *SubProblem) DiscardedMagnitude() float64 {
	var t float64
	for _, s := range sp.Discarded {
		t += s.Value
	}
	return t
}
