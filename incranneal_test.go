package incranneal

import (
	"context"
	"testing"
)

func TestSolvePaperExampleAllDevices(t *testing.T) {
	p := PaperExample()
	for _, dev := range []Device{DeviceDA, DeviceHQA, DeviceSA} {
		out, err := Solve(context.Background(), p, Options{Device: dev, Seed: 1})
		if err != nil {
			t.Fatalf("device %d: %v", dev, err)
		}
		if out.Cost != 25 {
			t.Errorf("device %d: cost = %v, want 25", dev, out.Cost)
		}
		if !out.Solution.Complete() {
			t.Errorf("device %d: incomplete solution", dev)
		}
	}
}

func TestSolveStrategiesOnPartitionedProblem(t *testing.T) {
	p := PaperExample()
	for _, strat := range []Strategy{StrategyIncremental, StrategyParallel, StrategyDefault} {
		out, err := Solve(context.Background(), p, Options{
			Strategy: strat,
			Capacity: 4, // force two partitions on the 8-plan example
			Seed:     2,
		})
		if err != nil {
			t.Fatalf("strategy %d: %v", strat, err)
		}
		if err := out.Solution.Validate(p); err != nil {
			t.Errorf("strategy %d: invalid solution: %v", strat, err)
		}
		if out.Cost < 25 || out.Cost > 36 {
			t.Errorf("strategy %d: cost = %v, want within [25, 36]", strat, out.Cost)
		}
	}
}

func TestSolveRejectsNilProblem(t *testing.T) {
	if _, err := Solve(context.Background(), nil, Options{}); err == nil {
		t.Error("Solve accepted nil problem")
	}
}

func TestGreedyMatchesPaper(t *testing.T) {
	p := PaperExample()
	sol, cost := Greedy(p)
	if cost != 34 {
		t.Errorf("greedy cost = %v, want 34", cost)
	}
	if got := Cost(p, sol); got != 34 {
		t.Errorf("Cost = %v, want 34", got)
	}
}

func TestGenerateSweepThroughFacade(t *testing.T) {
	p, err := GenerateSweep(SweepConfig{Queries: 20, PPQ: 3, Communities: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumQueries() != 20 {
		t.Errorf("queries = %d, want 20", p.NumQueries())
	}
	out, err := Solve(context.Background(), p, Options{Capacity: 24, Runs: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Complete() {
		t.Error("incomplete solution")
	}
	if out.NumPartitions < 2 {
		t.Errorf("expected partitioning with capacity 24, got %d partitions", out.NumPartitions)
	}
}

func TestGenerateBenchmarkThroughFacade(t *testing.T) {
	for _, bm := range []string{BenchmarkTPCH, BenchmarkLDBC, BenchmarkJOB} {
		p, err := GenerateBenchmark(bm, 15, 3, 5)
		if err != nil {
			t.Fatalf("%s: %v", bm, err)
		}
		if p.NumQueries() != 15 {
			t.Errorf("%s: queries = %d", bm, p.NumQueries())
		}
	}
	if _, err := GenerateBenchmark("nosuch", 10, 2, 1); err == nil {
		t.Error("accepted unknown benchmark")
	}
}

func TestDisableDSSChangesNothingButSteering(t *testing.T) {
	p, err := GenerateSweep(SweepConfig{Queries: 24, PPQ: 3, Communities: 2, DensityLow: 0.3, DensityHigh: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	with, err := Solve(context.Background(), p, Options{Capacity: 24, Runs: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(context.Background(), p, Options{Capacity: 24, Runs: 4, Seed: 7, DisableDSS: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.ReappliedSavings == 0 {
		t.Error("DSS re-applied nothing on a dense partitioned instance")
	}
	if without.ReappliedSavings != 0 {
		t.Error("disabled DSS still re-applied savings")
	}
	if !with.Solution.Complete() || !without.Solution.Complete() {
		t.Error("incomplete solutions")
	}
}
